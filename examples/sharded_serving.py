"""Sharded serving: spreading corpora across a shard pool.

Run with::

    python examples/sharded_serving.py

One serving core holds every device session, so its LRU caps how many
corpora stay warm.  The shard pool routes each corpus to a shard by
rendezvous-hashed fingerprint — every shard its own serving core on its
own executor (one modelled device each) — replicates corpora that turn
hot, and moves a minimal set of sessions when the pool is resized.  The
asyncio front end doubles as the pool's client: one event loop fans a
whole burst of queries to the owning shards without holding a thread
per request.
"""

from __future__ import annotations

import asyncio

from repro import Corpus, compress_corpus
from repro.api import Query
from repro.serve import (
    AsyncAnalyticsService,
    ServiceConfig,
    ShardedAnalyticsService,
    ShardedServiceConfig,
)


def build_corpora() -> dict:
    """Three small 'tenant' corpora with distinct fingerprints."""
    tenants = {}
    for name, topic in (
        ("logs", "request served in time cache hit on index user session opened"),
        ("tickets", "incident opened incident resolved escalation paged on call"),
        ("wiki", "design document reviewed merge request approved release notes"),
    ):
        text = f"{topic} " * 6
        corpus = Corpus.from_texts(
            {f"{name}_{i}.txt": text + f"entry {i}" for i in range(3)}, name=name
        )
        tenants[name] = compress_corpus(corpus)
    return tenants


def main() -> None:
    tenants = build_corpora()
    service = ShardedAnalyticsService(
        sharded_config=ShardedServiceConfig(
            num_shards=2,
            replication_factor=2,
            hot_query_share=0.6,
            min_queries_for_replication=6,
        ),
        service_config=ServiceConfig(max_sessions=2, cache_results=False),
    )

    # Rendezvous routing: each corpus has one deterministic owner shard.
    for name, compressed in tenants.items():
        print(f"{name:8s} -> shard {service.shard_for(compressed)}")
        outcome = service.submit(Query(task="word_count", top_k=3), source=compressed)
        assert outcome.result

    # Hammer one tenant until it crosses the replication threshold: its
    # queries then round-robin across two replica shards.
    hot = tenants["logs"]
    for _ in range(20):
        service.submit(Query(task="sort", top_k=5), source=hot)
    stats = service.stats()
    assert service.is_replicated(hot), "the hot corpus should have been promoted"
    print(
        f"\nhot tenant replicated across shards {service.owners_for(hot)} "
        f"({stats.replica_promotions} promotion(s), "
        f"queries per shard {'/'.join(str(n) for n in stats.routed_queries)})"
    )

    # Growing the pool moves only the corpora whose rendezvous winner
    # changed — sessions for everything else stay where they are.
    moved = service.resize(3)
    print(f"resized pool 2 -> 3 shards, moved {moved} session(s)")

    # The asyncio front end as shard client: one event loop, the whole
    # burst in flight, each query answered on its owning shard's executor.
    client = AsyncAnalyticsService(router=service)

    async def burst() -> None:
        queries = [
            (name, Query(task="inverted_index", top_k=2)) for name in tenants
        ] + [(name, Query(task="term_vector", top_k=2)) for name in tenants]
        outcomes = await asyncio.gather(
            *(client.submit(query, source=tenants[name]) for name, query in queries)
        )
        assert all(outcome.result for outcome in outcomes)
        print(f"async burst: {len(outcomes)} queries fanned across the pool")

    try:
        asyncio.run(burst())
    finally:
        client.close()

    stats = service.stats()
    print(
        f"\npool totals: {stats.queries} queries, "
        f"{stats.kernel_launches} kernel launches "
        f"({stats.launches_per_query:.2f}/query), "
        f"max {stats.max_resident_sessions} session(s) on any shard, "
        f"{stats.network_seconds * 1000:.2f} ms modelled placement network"
    )
    service.close()


if __name__ == "__main__":
    main()
