"""Sequence-sensitive analytics (n-gram counting) on compressed data.

Sequence count is the task the paper singles out as hardest for
compressed-domain processing: word order spans rule boundaries, so the
original CPU TADOC falls back to an expansion that is as expensive as
scanning the raw text.  G-TADOC's head/tail buffers avoid that.

This example compresses the Wikipedia-style dataset B analogue, counts
3-grams and 4-grams directly on the compressed form, verifies the
counts against the uncompressed reference, and shows the head/tail
buffers of a few grammar rules to make the mechanism visible.

Run with::

    python examples/sequence_analytics.py
"""

from __future__ import annotations

from repro import GTadoc, GTadocConfig, Task, UncompressedAnalytics, compress_corpus, generate_dataset
from repro.analytics.base import results_equal


def show_top_sequences(result, length: int, top_k: int = 8) -> None:
    print(f"\ntop {top_k} {length}-grams (counted on compressed data):")
    ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top_k]
    for sequence, count in ordered:
        print(f"  {' '.join(sequence):50s} {count}")


def main() -> None:
    corpus = generate_dataset("B", scale=0.1)
    print(f"dataset B analogue: {len(corpus)} files, {corpus.num_tokens} tokens")
    compressed = compress_corpus(corpus)
    print(f"grammar: {len(compressed.grammar)} rules, "
          f"{compressed.grammar.total_symbols()} symbols")

    for length in (3, 4):
        engine = GTadoc(compressed, config=GTadocConfig(sequence_length=length))
        outcome = engine.run(Task.SEQUENCE_COUNT)
        reference = UncompressedAnalytics(corpus, sequence_length=length).run(Task.SEQUENCE_COUNT)
        assert results_equal(Task.SEQUENCE_COUNT, outcome.result, reference), (
            "compressed-domain counts must match the uncompressed reference"
        )
        print(f"\n{length}-gram counting: {len(outcome.result)} distinct sequences, "
              f"{outcome.total_kernel_launches} kernel launches, results verified")
        show_top_sequences(outcome.result, length)

    # Peek at the head/tail machinery for a few rules.
    from repro.core import build_sequence_buffers
    from repro.core.layout import DeviceRuleLayout
    from repro.gpusim import GPUDevice

    layout = DeviceRuleLayout.from_compressed(compressed)
    buffers = build_sequence_buffers(layout, GPUDevice(), sequence_length=3)
    dictionary = compressed.dictionary
    print("\nhead/tail buffers of the first few rules (sequence length 3):")
    for rule_id in range(1, min(6, layout.num_rules)):
        head = " ".join(dictionary.decode(word) for word in buffers.heads[rule_id])
        tail = " ".join(dictionary.decode(word) for word in buffers.tails[rule_id])
        print(f"  R{rule_id}: head=[{head}]  tail=[{tail}]  "
              f"expands to {layout.expansion_lengths[rule_id]} words")


if __name__ == "__main__":
    main()
