"""Compare G-TADOC against the TADOC baselines across the Table I platforms.

This example drives the same experiment harness the benchmarks use —
which itself opens every engine through the unified backend registry
(:func:`repro.api.open_backend`) — on a reduced grid (datasets B and D,
all three GPU generations), and prints a compact Figure 9 style report:
modelled baseline time, modelled G-TADOC time and the speedup, plus the
per-phase breakdown of Figure 10 and the §VI-E comparison against GPU
analytics on uncompressed data.

It closes by issuing one :class:`repro.api.Query` against every
registered backend directly, verifying that all six engines answer the
same question identically through the one protocol.

Run with::

    python examples/platform_comparison.py
"""

from __future__ import annotations

from repro import Query, Task, available_backends, open_backend, results_equal
from repro.bench.aggregate import geometric_mean
from repro.bench.experiment import ExperimentConfig, ExperimentRunner
from repro.perf.platforms import VOLTA, list_platforms

DATASETS = ["B", "D"]


def main() -> None:
    runner = ExperimentRunner(ExperimentConfig(dataset_scale=0.1))

    print("Figure 9 style speedups (G-TADOC vs sequential CPU TADOC)")
    for platform in list_platforms(gpu_only=True):
        speedups = []
        print(f"\n  platform: {platform.key} ({platform.gpu.name})")
        for dataset in DATASETS:
            for task in Task.all():
                row = runner.speedup_row(dataset, task, platform)
                speedups.append(row.speedup_total)
                print(
                    f"    {dataset} {task.value:24s} "
                    f"TADOC {row.tadoc.total * 1000:9.2f} ms   "
                    f"G-TADOC {row.gtadoc.total * 1000:8.2f} ms   "
                    f"x{row.speedup_total:6.1f}"
                )
        print(f"    geometric mean: x{geometric_mean(speedups):.1f}")

    print("\nFigure 10 style phase breakdown on Volta (dataset B):")
    for task in Task.all():
        row = runner.speedup_row("B", task, VOLTA)
        print(
            f"  {task.value:24s} init x{row.speedup_initialization:6.1f}   "
            f"traversal x{row.speedup_traversal:7.1f}"
        )

    print("\n§VI-E: G-TADOC vs GPU-accelerated uncompressed analytics (Volta):")
    ratios = []
    for dataset in DATASETS:
        for task in Task.all():
            gtadoc = runner.gtadoc_times(dataset, task, VOLTA).total
            uncompressed = runner.gpu_uncompressed_times(dataset, task, VOLTA).total
            ratios.append(uncompressed / gtadoc)
    print(f"  geometric-mean advantage: x{geometric_mean(ratios):.2f} (paper: about 2x)")

    # One query, every engine: the unified API's cross-backend guarantee.
    print("\nUnified query API: Query(word_count, top_k=5) on every backend (dataset D):")
    compressed = runner.bundle("D").compressed
    query = Query(task=Task.WORD_COUNT, top_k=5)
    reference = open_backend("reference", compressed).run(query)
    for name in available_backends():
        backend = open_backend(name, compressed)
        outcome = backend.run(query)
        agrees = results_equal(query.task, outcome.result, reference.result)
        caps = backend.capabilities()
        print(
            f"  {name:18s} device={caps.device:7s} "
            f"compressed_domain={str(caps.compressed_domain):5s} "
            f"launches={outcome.kernel_launches:3d} ops={outcome.ops:10.0f} "
            f"agrees_with_reference={agrees}"
        )
        assert agrees, f"backend {name} disagrees with the reference"


if __name__ == "__main__":
    main()
