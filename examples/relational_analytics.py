"""Relational analytics directly on compressed data.

Run with::

    python examples/relational_analytics.py

The classic G-TADOC tasks are term/sequence analytics, but the
operate-on-compressed trick carries further: this example treats every
corpus file as one *row* of a table (a small fleet of order records),
declares a :class:`~repro.relational.spec.RowSchema` that parses typed
fields out of each file's token stream, and runs SELECT-style queries —
filter, group-by, aggregate — without ever materializing decompressed
rows.  Rule-level parse states are computed bottom-up over the grammar
and memoized in the device session, so after the first query every
further query over the same schema pays only two marginal kernel
launches (filter + aggregate).

The same :class:`~repro.api.query.Query` runs unchanged on every
registered backend; the compressed-domain engines and the uncompressed
reference answer bit-identically.
"""

from __future__ import annotations

from repro import Corpus, compress_corpus
from repro.api import Query, open_backend
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)


def build_corpus() -> Corpus:
    """One file per order record: ``customer , region , quantity , price``."""
    orders = [
        ("alice", "east", 3, 9.5),
        ("bob", "west", 1, 42.0),
        ("carol", "east", 7, 3.25),
        ("dave", "north", 2, 18.0),
        ("erin", "west", 5, 7.75),
        ("frank", "east", 4, 12.5),
        ("grace", "north", 6, 2.0),
        ("heidi", "west", 2, 30.0),
    ]
    texts = {
        f"order_{index:03d}.txt": f"{customer} , {region} , {quantity} , {price}"
        for index, (customer, region, quantity, price) in enumerate(orders)
    }
    return Corpus.from_texts(texts, name="orders-demo")


def build_schema() -> RowSchema:
    """Comma-delimited columns: customer, region, quantity, price."""
    return RowSchema(
        fields=(
            FieldSpec("customer", "str", column=0),
            FieldSpec("region", "str", column=1),
            FieldSpec("quantity", "int", column=2),
            FieldSpec("price", "float", column=3),
        ),
        delimiter=",",
    )


def main() -> None:
    corpus = build_corpus()
    compressed = compress_corpus(corpus)
    backend = open_backend("gtadoc", compressed)
    schema = build_schema()

    # -- 1. orders per region, largest groups first --------------------------------
    by_region = RelationalQuery(
        schema=schema,
        group_by="region",
        aggregates=(Aggregate("count"), Aggregate("sum", "quantity")),
        order_by="count",
    )
    outcome = backend.run(Query(task="relational", extras={"relational": by_region}))
    print(f"orders by region ({outcome.kernel_launches} kernel launches, cold):")
    for region, (count, total_quantity) in outcome.result:
        print(f"  {region:<6} orders={count}  quantity={total_quantity}")

    # -- 2. a second query over the same schema reuses the memoized rows -----------
    big_orders = RelationalQuery(
        schema=schema,
        predicate=(Condition("quantity", "ge", 3),),
        group_by="region",
        aggregates=(Aggregate("count"), Aggregate("avg", "price")),
    )
    outcome = backend.run(Query(task="relational", extras={"relational": big_orders}))
    print(
        f"\nbig orders (quantity >= 3) by region "
        f"({outcome.kernel_launches} kernel launches, warm):"
    )
    for region, (count, avg_price) in outcome.result:
        print(f"  {region:<6} orders={count}  avg price={avg_price:.2f}")

    # -- 3. the whole backend matrix answers bit-identically -----------------------
    query = Query(task="relational", top_k=2, extras={"relational": by_region})
    reference = open_backend("reference", compressed).run(query).result
    print("\ntop-2 regions, cross-backend bit-identity:")
    for name in ("gtadoc", "cpu", "parallel", "distributed", "gpu_uncompressed"):
        result = open_backend(name, compressed).run(query).result
        verdict = "ok" if result == reference else "MISMATCH"
        print(f"  {name:<18} {verdict}: {result}")


if __name__ == "__main__":
    main()
