"""Serving workload: concurrent analytics traffic through AnalyticsService.

Run with::

    python examples/serving_workload.py

TADOC compresses once and serves many queries; the serving layer
(:mod:`repro.serve`) makes that concurrent and cached.  This example
builds a small corpus, synthesizes a mixed request trace (repeated hot
queries, per-query top-k cuts, file subsets, sequence lengths), and
replays it with 8 worker threads through an
:class:`~repro.serve.AnalyticsService` — then verifies every served
result against serial per-query execution and prints what the session
cache, micro-batch coalescing and the result cache saved.
"""

from __future__ import annotations

from repro import Corpus, compress_corpus
from repro.api import Query
from repro.serve import AnalyticsService, ServiceConfig, TraceConfig, replay_trace, synthesize_trace


def build_corpus() -> Corpus:
    """A small 'server logs' corpus with plenty of repeated phrasing."""
    texts = {
        "frontend.log": (
            "request served in time request served in time cache hit on index "
            "user session opened user session opened request served in time"
        ),
        "backend.log": (
            "query planned and executed query planned and executed cache miss on index "
            "request served in time user session opened query planned and executed"
        ),
        "worker.log": (
            "batch job completed batch job completed cache hit on index "
            "query planned and executed batch job completed request served in time"
        ),
    }
    return Corpus.from_texts(texts, name="serving-demo")


def main() -> None:
    corpus = build_corpus()
    compressed = compress_corpus(corpus)
    print(
        f"corpus: {len(corpus)} files, {corpus.num_tokens} tokens "
        f"(fingerprint {compressed.fingerprint()[:12]}...)"
    )

    trace = synthesize_trace(
        compressed.file_names, TraceConfig(num_requests=40, seed=11, repeat_fraction=0.4)
    )
    print(f"trace: {len(trace)} requests, {len(set(trace))} distinct queries")

    report = replay_trace(
        compressed,
        trace,
        num_threads=8,
        service_config=ServiceConfig(coalesce_window=0.002),
    )
    assert report.results_match, "served results diverged from serial execution"
    stats = report.stats

    print(f"\nserved {stats.queries} queries with {report.num_threads} worker threads:")
    print(f"  engine micro-batches:   {stats.micro_batches} "
          f"(mean size {stats.mean_batch_size:.2f}, {stats.coalesced_queries} queries coalesced)")
    print(f"  result cache:           {stats.result_cache.hits} hits / "
          f"{stats.result_cache.lookups} lookups ({stats.result_cache.hit_rate * 100:.1f}%)")
    print(f"  kernel launches/query:  {report.served_launches_per_query:.2f} served vs "
          f"{report.serial_launches_per_query:.2f} serial "
          f"({report.launch_reduction * 100:.1f}% fewer)")
    print("  every result bit-identical to a fresh per-query run")

    # The service front door also answers one-off queries directly, and
    # repeated queries come straight from the result cache.
    service = AnalyticsService(compressed)
    first = service.submit(Query(task="sort", top_k=3))
    again = service.submit(Query(task="sort", top_k=3))
    assert again.details["result_cache"] == "hit"
    print(f"\ntop-3 words: {first.result} (second ask served from cache)")


if __name__ == "__main__":
    main()
