"""Async serving: concurrent analytics traffic on one event loop.

Run with::

    python examples/async_serving.py

The thread-based serving example (``serving_workload.py``) needs a
worker thread per in-flight request; this one serves the same kind of
mixed traffic from a single asyncio event loop.  Every request is a
coroutine, so the whole burst is in flight at once, compatible queries
pile onto the event-driven coalescing windows (which close early the
moment a micro-batch fills), and the engine's simulated kernels run on
a small bounded executor so the loop itself never blocks.
"""

from __future__ import annotations

import asyncio

from repro import Corpus, compress_corpus
from repro.api import Query
from repro.serve import (
    AsyncAnalyticsService,
    ServiceConfig,
    TraceConfig,
    replay_trace_async,
    synthesize_trace,
)


def build_corpus() -> Corpus:
    """A small 'server logs' corpus with plenty of repeated phrasing."""
    texts = {
        "frontend.log": (
            "request served in time request served in time cache hit on index "
            "user session opened user session opened request served in time"
        ),
        "backend.log": (
            "query planned and executed query planned and executed cache miss on index "
            "request served in time user session opened query planned and executed"
        ),
        "worker.log": (
            "batch job completed batch job completed cache hit on index "
            "query planned and executed batch job completed request served in time"
        ),
    }
    return Corpus.from_texts(texts, name="async-serving-demo")


async def burst(service: AsyncAnalyticsService) -> None:
    """Fire one burst of concurrent queries and show how they coalesced."""
    queries = [
        Query(task="word_count"),
        Query(task="sort", top_k=5),
        Query(task="inverted_index"),
        Query(task="term_vector", top_k=3),
        Query(task="ranked_inverted_index", top_k=5),
        Query(task="sequence_count"),
    ]
    outcomes = await asyncio.gather(*(service.submit(query) for query in queries))
    batch_sizes = sorted(outcome.details["batch_size"] for outcome in outcomes)
    print(f"burst of {len(queries)} concurrent queries -> micro-batch sizes {batch_sizes}")
    assert any(size > 1 for size in batch_sizes), "concurrent compatible queries must coalesce"


def main() -> None:
    corpus = build_corpus()
    compressed = compress_corpus(corpus)
    print(
        f"corpus: {len(corpus)} files, {corpus.num_tokens} tokens "
        f"(fingerprint {compressed.fingerprint()[:12]}...)"
    )

    # One event-driven burst through the async front door.
    service = AsyncAnalyticsService(
        compressed, service_config=ServiceConfig(cache_results=False, coalesce_window=0.02)
    )
    try:
        asyncio.run(burst(service))
    finally:
        service.close()

    # A full trace replay: the whole trace in flight on one loop, checked
    # for bit-identity against serial per-query execution.
    trace = synthesize_trace(
        compressed.file_names, TraceConfig(num_requests=40, seed=11, repeat_fraction=0.4)
    )
    print(f"\ntrace: {len(trace)} requests, {len(set(trace))} distinct queries")
    report = replay_trace_async(
        compressed,
        trace,
        concurrency=len(trace),
        service_config=ServiceConfig(coalesce_window=0.002),
    )
    assert report.results_match, "async served results diverged from serial execution"
    stats = report.stats

    print(f"served {stats.queries} queries with {report.num_threads} requests in flight:")
    print(f"  engine micro-batches:   {stats.micro_batches} "
          f"(mean size {stats.mean_batch_size:.2f}, {stats.coalesced_queries} queries coalesced)")
    print(f"  kernel launches/query:  {report.served_launches_per_query:.2f} served vs "
          f"{report.serial_launches_per_query:.2f} serial "
          f"({report.launch_reduction * 100:.1f}% fewer)")
    print("  every result bit-identical to a fresh per-query run")


if __name__ == "__main__":
    main()
