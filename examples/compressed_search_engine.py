"""A small search-engine style workload on compressed data.

The paper motivates TADOC with document analytics over large,
redundant corpora.  This example builds the NSFRAA-style dataset A
analogue (many small files sharing boilerplate), compresses it once,
and then serves search-style queries *from the compressed form* through
the unified query API (:mod:`repro.api`):

* the inverted index answers "which documents mention X?",
* the ranked inverted index orders those documents by term frequency
  (``top_k`` trims each posting list at the query layer),
* the term vector provides per-document frequency vectors for a simple
  tf-based relevance score over multi-word queries,
* a file-subset query re-ranks within a caller-chosen document slice,
  doing only the marginal traversal work for those files.

All queries hit one ``open_backend("gtadoc", ...)`` backend, so the
engine's device session is shared: initialization and shared traversal
state are charged once, and every query after the first only adds its
marginal kernels.

Run with::

    python examples/compressed_search_engine.py
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import Query, Task, compress_corpus, generate_dataset, open_backend


def score_query(
    query_words: List[str],
    inverted: Dict[str, List[str]],
    vectors: Dict[str, Dict[str, int]],
    top_k: int = 5,
) -> List[Tuple[str, int]]:
    """Rank documents containing any query word by summed term frequency."""
    candidates = set()
    for word in query_words:
        candidates.update(inverted.get(word, []))
    scored = [
        (name, sum(vectors[name].get(word, 0) for word in query_words))
        for name in candidates
    ]
    return sorted(scored, key=lambda pair: (-pair[1], pair[0]))[:top_k]


def main() -> None:
    corpus = generate_dataset("A", scale=0.2)
    print(f"dataset A analogue: {len(corpus)} files, {corpus.num_tokens} tokens")

    compressed = compress_corpus(corpus)
    stats = compressed.statistics()
    print(
        f"compressed once: {stats.num_rules} rules, ratio {stats.compression_ratio:.2f}x; "
        "all queries below run on the compressed form"
    )

    backend = open_backend("gtadoc", compressed)

    # Build the index through the uniform query surface.  The first query
    # pays initialization; the second reuses the session's shared state.
    first = backend.run(Query(task=Task.INVERTED_INDEX))
    second = backend.run(Query(task=Task.TERM_VECTOR))
    inverted, vectors = first.result, second.result
    print(
        f"index covers {len(inverted)} distinct words across {len(vectors)} documents "
        f"(initialization kernels: first query {first.perf.initialization.kernel_launches}, "
        f"second query {second.perf.initialization.kernel_launches})"
    )

    # Query with the most common words so hits are guaranteed on synthetic data.
    common_outcome = backend.run(Query(task=Task.SORT, top_k=3))
    common = [word for word, _count in common_outcome.result]
    for query_words in ([common[0]], common[:2], common):
        results = score_query(query_words, inverted, vectors)
        print(f"\nquery: {' '.join(query_words)}")
        for rank, (name, score) in enumerate(results, start=1):
            print(f"  {rank}. {name}  (score {score})")

    # Ranked postings with a query-layer top-k cut.
    word = common[0]
    ranked = backend.run(Query(task=Task.RANKED_INVERTED_INDEX, terms=(word,), top_k=5))
    print(f"\nranked inverted index entry for {word!r} (top 5):")
    for name, count in ranked.result[word]:
        print(f"  {name}: {count}")

    # Re-rank within a document slice: the file filter reaches the
    # traversal program, so the restricted query performs only the
    # marginal work for those files.
    slice_names = tuple(sorted(vectors)[: max(2, len(vectors) // 4)])
    sliced = backend.run(
        Query(task=Task.RANKED_INVERTED_INDEX, files=slice_names, terms=(word,), top_k=5)
    )
    print(
        f"\nsame query restricted to {len(slice_names)} files "
        f"({sliced.perf.traversal.ops:.0f} marginal traversal ops vs "
        f"{ranked.perf.traversal.ops:.0f} unrestricted):"
    )
    for name, count in sliced.result.get(word, []):
        print(f"  {name}: {count}")


if __name__ == "__main__":
    main()
