"""A small search-engine style workload on compressed data.

The paper motivates TADOC with document analytics over large,
redundant corpora.  This example builds the NSFRAA-style dataset A
analogue (many small files sharing boilerplate), compresses it once,
and then serves search-style queries *from the compressed form*:

* the inverted index answers "which documents mention X?",
* the ranked inverted index orders those documents by term frequency,
* the term vector provides per-document frequency vectors for a simple
  tf-based relevance score over multi-word queries.

Run with::

    python examples/compressed_search_engine.py
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import GTadoc, Task, compress_corpus, generate_dataset


def build_index(engine: GTadoc) -> Tuple[Dict[str, List[str]], Dict[str, Dict[str, int]]]:
    """Build the inverted index and term vectors directly on compressed data."""
    inverted = engine.run(Task.INVERTED_INDEX).result
    vectors = engine.run(Task.TERM_VECTOR).result
    return inverted, vectors


def score_query(
    query: List[str],
    inverted: Dict[str, List[str]],
    vectors: Dict[str, Dict[str, int]],
    top_k: int = 5,
) -> List[Tuple[str, int]]:
    """Rank documents containing any query word by summed term frequency."""
    candidates = set()
    for word in query:
        candidates.update(inverted.get(word, []))
    scored = [
        (name, sum(vectors[name].get(word, 0) for word in query)) for name in candidates
    ]
    return sorted(scored, key=lambda pair: (-pair[1], pair[0]))[:top_k]


def main() -> None:
    corpus = generate_dataset("A", scale=0.2)
    print(f"dataset A analogue: {len(corpus)} files, {corpus.num_tokens} tokens")

    compressed = compress_corpus(corpus)
    stats = compressed.statistics()
    print(
        f"compressed once: {stats.num_rules} rules, ratio {stats.compression_ratio:.2f}x; "
        "all queries below run on the compressed form"
    )

    engine = GTadoc(compressed)
    inverted, vectors = build_index(engine)
    print(f"index covers {len(inverted)} distinct words across {len(vectors)} documents")

    # Query with the most common words so hits are guaranteed on synthetic data.
    word_counts = engine.run(Task.WORD_COUNT).result
    common = [word for word, _count in sorted(word_counts.items(), key=lambda item: -item[1])[:3]]
    for query in ([common[0]], common[:2], common):
        results = score_query(query, inverted, vectors)
        print(f"\nquery: {' '.join(query)}")
        for rank, (name, score) in enumerate(results, start=1):
            print(f"  {rank}. {name}  (score {score})")

    ranked = engine.run(Task.RANKED_INVERTED_INDEX).result
    word = common[0]
    print(f"\nranked inverted index entry for {word!r} (top 5):")
    for name, count in ranked[word][:5]:
        print(f"  {name}: {count}")


if __name__ == "__main__":
    main()
