"""Quickstart: compress a small corpus and run analytics on it without decompression.

Run with::

    python examples/quickstart.py

The script builds a tiny corpus of three documents, compresses it with
the TADOC pipeline (dictionary conversion + Sequitur), and runs the full
CompressDirect task suite as one ``run_batch`` — so the Figure-3
initialization phase and all shared traversal state (local tables, rule
weights, head/tail buffers) are charged once for the whole batch, and
every task only adds its marginal traversal kernels.  It also checks
the results against the uncompressed reference implementation, which is
exactly what the library's tests do at larger scales.
"""

from __future__ import annotations

from repro import Corpus, GTadoc, Task, UncompressedAnalytics, compress_corpus, results_equal


def build_corpus() -> Corpus:
    """Three small documents with plenty of repeated phrasing."""
    texts = {
        "report_a.txt": (
            "the quick brown fox jumps over the lazy dog "
            "the quick brown fox jumps over the lazy dog "
            "a compressed corpus keeps repeated phrases only once"
        ),
        "report_b.txt": (
            "text analytics directly on compression avoids decompression "
            "the quick brown fox jumps over the lazy dog again and again"
        ),
        "report_c.txt": (
            "a compressed corpus keeps repeated phrases only once "
            "text analytics directly on compression avoids decompression"
        ),
    }
    return Corpus.from_texts(texts, name="quickstart")


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {len(corpus)} files, {corpus.num_tokens} tokens")

    compressed = compress_corpus(corpus)
    stats = compressed.statistics()
    print(
        f"compressed: {stats.num_rules} rules, {stats.compressed_symbols} symbols "
        f"(ratio {stats.compression_ratio:.2f}x), vocabulary {stats.vocabulary_size}"
    )

    engine = GTadoc(compressed)
    reference = UncompressedAnalytics(corpus)

    # One batch over three tasks: initialization + shared state charged once.
    tasks = (Task.WORD_COUNT, Task.SORT, Task.SEQUENCE_COUNT)
    batch = engine.run_batch(tasks)
    print(
        f"\nbatch over {len(batch)} tasks: "
        f"{batch.shared_kernel_launches} shared kernel launches "
        f"(init {batch.init_record.num_launches}, "
        f"shared state {batch.shared_record.num_launches}), "
        f"{batch.total_kernel_launches} total"
    )

    for task in tasks:
        outcome = batch[task]
        matches = results_equal(task, outcome.result, reference.run(task))
        print(f"\n== {task.value} (traversal: {outcome.strategy.value}, "
              f"{outcome.total_kernel_launches} marginal kernel launches, "
              f"matches reference: {matches})")
        if task is Task.WORD_COUNT:
            top = sorted(outcome.result.items(), key=lambda item: -item[1])[:5]
            for word, count in top:
                print(f"  {word:15s} {count}")
        elif task is Task.SORT:
            for word, count in outcome.result[:5]:
                print(f"  {word:15s} {count}")
        else:
            top = sorted(outcome.result.items(), key=lambda item: -item[1])[:5]
            for sequence, count in top:
                print(f"  {' '.join(sequence):40s} {count}")

    # A single-task run still pays the full per-query cost — compare the
    # launch counts to see what batching saves.
    single = engine.run(Task.WORD_COUNT)
    print(
        f"\nfor comparison, a standalone word_count run launches "
        f"{single.total_kernel_launches} kernels (vs "
        f"{batch[Task.WORD_COUNT].total_kernel_launches} marginal in the batch)"
    )


if __name__ == "__main__":
    main()
