"""Lint engine tests: golden bad examples + a clean full-repo run.

Each rule gets a miniature synthetic repo (a tmp ``src`` tree with just
enough files for the rule to resolve) containing exactly one deliberate
violation, and must report exactly one finding at the violating line.
The capstone is the full-repo run: the real source tree must come back
with zero findings — that is the invariant CI enforces.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import registered_rules, run_lint
from repro.cli import main as cli_main


def _mini_repo(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "src"
    for rel_path, content in files.items():
        target = root / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


# ----------------------------------------------------------------------------------------
# Golden bad examples: exactly one finding each
# ----------------------------------------------------------------------------------------

class TestGoldenBadExamples:
    def test_lock_order_inversion_nested_with(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/core/session.py": """
                class DeviceSession:
                    def snapshot(self):
                        with self.compressed.lock:
                            with self._lock:
                                return self._layout
            """,
        })
        findings = run_lint(root, rules=["lock-order"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "lock-order"
        assert finding.path == "repro/core/session.py"
        assert finding.line == 5
        assert "'session'" in finding.message and "'corpus'" in finding.message

    def test_lock_order_inversion_through_call(self, tmp_path):
        # The exact shape of the real bug this PR fixed: a leaf stats
        # lock held across a cache-lock-taking call on another object.
        root = _mini_repo(tmp_path, {
            "repro/serve/service.py": """
                class LRUCache:
                    def stats(self):
                        with self._lock:
                            return dict(self._counters)


                class ServingCore:
                    def stats(self):
                        with self._stats_lock:
                            return self._sessions.stats()
            """,
        })
        findings = run_lint(root, rules=["lock-order"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.line == 11
        assert "'serve.cache'" in finding.message
        assert "LRUCache.stats" in finding.message

    def test_kernel_discipline_raw_stats_construction(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/baselines/rogue.py": """
                from repro.perf.counters import KernelStats


                def build_stats():
                    return KernelStats(
                        name="rogueKernel",
                        num_threads=32,
                        num_warps=1,
                        warp_serial_ops=1.0,
                        total_thread_ops=32.0,
                    )
            """,
        })
        findings = run_lint(root, rules=["kernel-discipline"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "repro/baselines/rogue.py"
        assert "ad-hoc KernelStats" in finding.message

    def test_kernel_discipline_missing_vector_counterpart(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/core/traversal.py": """
                def count_words(device, layout):
                    def kernel(tid, ctx):
                        ctx.charge(compute_ops=1.0)
                    device.launch("orphanKernel", kernel, 8)
            """,
            "repro/core/vectorized.py": """
                def count_words_vec(device, layout):
                    device.launch_bulk("someOtherKernel", 8)
            """,
        })
        findings = run_lint(root, rules=["kernel-discipline"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "repro/core/traversal.py"
        assert "'orphanKernel'" in finding.message

    def test_plan_coverage_unregistered_task(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/analytics/base.py": """
                import enum


                class Task(str, enum.Enum):
                    WORD_COUNT = "word_count"
                    SORT = "sort"
            """,
            "repro/core/plans.py": """
                from repro.analytics.base import Task

                PLAN_REGISTRY = {
                    Task.WORD_COUNT: "plan",
                }
            """,
        })
        findings = run_lint(root, rules=["plan-coverage"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "repro/core/plans.py"
        assert "Task.SORT" in finding.message

    def test_plan_coverage_backend_missing_protocol_member(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/api/registry.py": """
                class HalfBackend:
                    name = "half"

                    def run(self, query):
                        return None

                    def run_batch(self, queries):
                        return []


                register_backend(HalfBackend.name, HalfBackend)
            """,
        })
        findings = run_lint(root, rules=["plan-coverage"])
        assert len(findings) == 1
        (finding,) = findings
        assert "HalfBackend" in finding.message
        assert "capabilities" in finding.message

    def test_determinism_unseeded_rng(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/core/noise.py": """
                import random


                def jitter(value):
                    return value + random.random()
            """,
        })
        findings = run_lint(root, rules=["determinism"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "repro/core/noise.py"
        assert finding.line == 6
        assert "random.random()" in finding.message

    def test_determinism_wall_clock_read(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/gpusim/stamp.py": """
                import time


                def stamp_launch(record):
                    record.stamp = time.perf_counter()
            """,
        })
        findings = run_lint(root, rules=["determinism"])
        assert len(findings) == 1
        assert "time.perf_counter()" in findings[0].message

    def test_epoch_guard_raw_put_on_serving_cache(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/serve/rogue.py": """
                from repro.serve.caches import LRUCache


                class RogueCore:
                    def __init__(self):
                        self._results = LRUCache(capacity=8)

                    def _finish(self, key, outcome):
                        self._results.put(key, outcome)
            """,
        })
        findings = run_lint(root, rules=["epoch-guard"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "epoch-guard"
        assert finding.path == "repro/serve/rogue.py"
        assert finding.line == 10
        assert "self._results" in finding.message
        assert "put_if" in finding.message

    def test_epoch_guard_guardless_put_if(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/serve/rogue.py": """
                from repro.serve import caches


                class RogueCore:
                    def __init__(self):
                        self._results = caches.LRUCache(capacity=8)

                    def _finish(self, key, outcome, weight):
                        self._results.put_if(key, outcome, weight=weight)
            """,
        })
        findings = run_lint(root, rules=["epoch-guard"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.line == 10
        assert "guard" in finding.message

    def test_epoch_guard_accepts_guarded_writes_and_plain_dicts(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/serve/fine.py": """
                from repro.serve.caches import LRUCache


                class GuardedCore:
                    def __init__(self):
                        self._results = LRUCache(capacity=8)
                        self._shipped = {}

                    def _finish(self, key, outcome, epoch):
                        self._results.put_if(
                            key, outcome, guard=lambda: self._epoch() == epoch
                        )
                        # A plain dict is not a serving cache.
                        self._shipped.update({key: outcome})
            """,
        })
        assert run_lint(root, rules=["epoch-guard"]) == []


# ----------------------------------------------------------------------------------------
# The real repo is clean
# ----------------------------------------------------------------------------------------

class TestFullRepo:
    def test_full_repo_zero_findings(self):
        assert run_lint() == []

    def test_all_rules_registered(self):
        names = [name for name, _ in registered_rules()]
        assert names == sorted(
            [
                "determinism",
                "epoch-guard",
                "kernel-discipline",
                "lock-order",
                "plan-coverage",
            ]
        )


# ----------------------------------------------------------------------------------------
# CLI front end
# ----------------------------------------------------------------------------------------

class TestCli:
    def test_lint_clean_repo_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().err

    def test_lint_bad_repo_exits_nonzero_with_locations(self, tmp_path, capsys):
        root = _mini_repo(tmp_path, {
            "repro/core/noise.py": """
                import random


                def jitter(value):
                    return value + random.random()
            """,
        })
        assert cli_main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "repro/core/noise.py:6: [determinism]" in out

    def test_lint_rule_selection(self, tmp_path):
        root = _mini_repo(tmp_path, {
            "repro/core/noise.py": """
                import random


                def jitter(value):
                    return value + random.random()
            """,
        })
        # The violation is invisible to a different rule.
        assert cli_main(["lint", "--root", str(root), "--rule", "lock-order"]) == 0

    def test_lint_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            cli_main(["lint", "--rule", "no-such-rule"])

    def test_lint_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-order:" in out and "determinism:" in out
