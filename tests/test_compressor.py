"""Tests for end-to-end TADOC compression and lossless reconstruction."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.compression.compressor import TadocCompressor, compress_corpus
from repro.compression.grammar import is_rule_ref
from repro.data.corpus import Corpus, Document


class TestRoundTrip:
    def test_tiny_corpus_roundtrip(self, tiny_corpus, tiny_compressed):
        assert tiny_compressed.decompress() == tiny_corpus

    def test_single_file_roundtrip(self, single_file_corpus, single_file_compressed):
        assert single_file_compressed.decompress() == single_file_corpus

    def test_many_files_roundtrip(self, many_files_corpus, many_files_compressed):
        assert many_files_compressed.decompress() == many_files_corpus

    def test_few_files_roundtrip(self, few_files_corpus, few_files_compressed):
        assert few_files_compressed.decompress() == few_files_corpus

    def test_expand_file_tokens_matches_document(self, tiny_corpus, tiny_compressed):
        for index, document in enumerate(tiny_corpus):
            assert tiny_compressed.expand_file_tokens(index) == document.tokens

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from("abcdefgh"), min_size=0, max_size=60),
            min_size=1,
            max_size=5,
        )
    )
    def test_roundtrip_random_corpora(self, token_lists):
        corpus = Corpus(
            [
                Document.from_tokens(f"f{index}", tokens)
                for index, tokens in enumerate(token_lists)
            ],
            name="random",
        )
        compressed = compress_corpus(corpus)
        assert compressed.decompress() == corpus


class TestFileBoundaries:
    def test_splitter_count(self, tiny_compressed):
        assert len(tiny_compressed.splitter_ids) == 2

    def test_single_file_has_no_splitters(self, single_file_compressed):
        assert single_file_compressed.splitter_ids == []

    def test_splitters_stay_in_root(self, many_files_compressed):
        """Unique splitters can never be folded into a sub-rule."""
        grammar = many_files_compressed.grammar
        for rule in grammar.rules[1:]:
            for symbol in rule.symbols:
                if not is_rule_ref(symbol):
                    assert not many_files_compressed.is_splitter(symbol)

    def test_segments_cover_all_files(self, many_files_compressed):
        segments = many_files_compressed.root_file_segments
        assert len(segments) == len(many_files_compressed.file_names)
        for start, end in segments:
            assert 0 <= start <= end

    def test_segments_are_disjoint_and_ordered(self, tiny_compressed):
        segments = tiny_compressed.root_file_segments
        for (_, previous_end), (next_start, _) in zip(segments, segments[1:]):
            assert next_start == previous_end + 1  # the splitter sits in between


class TestStatistics:
    def test_statistics_consistency(self, few_files_compressed, few_files_corpus):
        stats = few_files_compressed.statistics()
        assert stats.num_files == len(few_files_corpus)
        assert stats.original_tokens == few_files_corpus.num_tokens
        assert stats.vocabulary_size == few_files_corpus.vocabulary_size
        assert stats.num_rules == len(few_files_compressed.grammar)
        assert stats.compressed_symbols == few_files_compressed.grammar.total_symbols()

    def test_redundant_corpus_compresses(self, few_files_compressed):
        assert few_files_compressed.statistics().compression_ratio > 1.5

    def test_compressor_class_equivalent_to_helper(self, tiny_corpus):
        by_class = TadocCompressor().compress(tiny_corpus)
        by_helper = compress_corpus(tiny_corpus)
        assert by_class.grammar == by_helper.grammar
        assert by_class.dictionary == by_helper.dictionary

    def test_dictionary_covers_all_words(self, tiny_corpus, tiny_compressed):
        for word in tiny_corpus.vocabulary:
            assert word in tiny_compressed.dictionary
