"""Runtime lock-order witness tests.

The witness must (1) be a true no-op when disabled — ``make_lock``
returns the plain ``threading`` primitives, (2) detect an injected
lock-order inversion *at acquire time* with both acquisition stacks in
the report, (3) tolerate the legal patterns the serving stack relies on
(re-entrant re-acquisition, ``Condition`` integration), and (4) record
the held-before edges real serving traffic produces.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import lockcheck
from repro.analysis.lockcheck import (
    LockOrderViolation,
    WitnessLock,
    make_lock,
    reset_witness,
    witness,
    witness_edges,
)
from repro.compression.compressor import compress_corpus
from repro.serve import AnalyticsService, ServiceConfig


@pytest.fixture(autouse=True)
def _clean_witness():
    """Isolate every test: known enabled-state, empty held-before graph."""
    was_enabled = lockcheck.is_enabled()
    lockcheck.disable()
    reset_witness()
    yield
    reset_witness()
    if was_enabled:
        lockcheck.enable()
    else:
        lockcheck.disable()


# ----------------------------------------------------------------------------------------
# Disabled: zero overhead
# ----------------------------------------------------------------------------------------

class TestDisabled:
    def test_disabled_returns_plain_primitives(self):
        assert isinstance(make_lock("serve.cache"), type(threading.Lock()))
        assert isinstance(make_lock("session", reentrant=True), type(threading.RLock()))

    def test_disabled_never_checks_order(self):
        outer = make_lock("serve.stats")   # rank 60
        inner = make_lock("serve.cache")   # rank 30: inverted, but unchecked
        with outer:
            with inner:
                pass
        assert witness_edges() == []

    def test_unknown_level_rejected_even_when_disabled(self):
        with pytest.raises(KeyError):
            make_lock("no.such.level")


# ----------------------------------------------------------------------------------------
# Enabled: inversion detection with both stacks
# ----------------------------------------------------------------------------------------

def _acquire_held_lock_here(lock):
    lock.acquire()


def _attempt_offending_acquire_here(lock):
    lock.acquire()


class TestInversionDetection:
    def test_injected_inversion_detected_at_acquire_time(self):
        with witness():
            stats_lock = make_lock("serve.stats")   # rank 60
            cache_lock = make_lock("serve.cache")   # rank 30
        assert isinstance(stats_lock, WitnessLock)
        _acquire_held_lock_here(stats_lock)
        try:
            with pytest.raises(LockOrderViolation) as excinfo:
                _attempt_offending_acquire_here(cache_lock)
        finally:
            stats_lock.release()
        report = str(excinfo.value)
        assert "lock-order inversion" in report
        assert "serve.cache" in report and "serve.stats" in report
        # Both acquisition stacks, each pointing at its acquiring frame.
        assert "stack that acquired the held lock" in report
        assert "_acquire_held_lock_here" in report
        assert "stack attempting the offending acquisition" in report
        assert "_attempt_offending_acquire_here" in report
        # Detection happened before blocking: nothing is deadlocked and
        # the offending lock is still free.
        assert cache_lock.acquire(blocking=False)
        cache_lock.release()

    def test_cross_thread_inversion_reports_opposite_stack(self):
        with witness():
            first = make_lock("serve.cache")   # rank 30
            second = make_lock("serve.epoch")  # rank 62

        def legal_order():
            with first:
                with second:  # valid 30 -> 62 edge, witnessed into the graph
                    pass

        worker = threading.Thread(target=legal_order, name="legal-order-thread")
        worker.start()
        worker.join(timeout=5.0)
        assert ("serve.cache", "serve.epoch") in witness_edges()

        # This thread now takes the opposite order: the report must show
        # this thread's two stacks *and* the worker's earlier edge.
        second.acquire()
        try:
            with pytest.raises(LockOrderViolation) as excinfo:
                first.acquire()
        finally:
            second.release()
        report = str(excinfo.value)
        assert "opposite-order edge witnessed earlier" in report
        assert "legal-order-thread" in report
        assert "legal_order" in report

    def test_same_rank_distinct_instances_rejected(self):
        with witness():
            a = make_lock("serve.cache")
            b = make_lock("serve.cache")
        with a:
            with pytest.raises(LockOrderViolation):
                b.acquire()

    def test_non_reentrant_self_deadlock_detected(self):
        with witness():
            lock = make_lock("serve.cache")
        with lock:
            with pytest.raises(LockOrderViolation) as excinfo:
                lock.acquire()
        assert "re-acquired by its holder" in str(excinfo.value)


# ----------------------------------------------------------------------------------------
# Enabled: legal patterns stay legal
# ----------------------------------------------------------------------------------------

class TestLegalPatterns:
    def test_increasing_rank_order_is_silent(self):
        with witness():
            router = make_lock("serve.router")  # 10
            corpus = make_lock("corpus", reentrant=True)  # 50
            epoch = make_lock("serve.epoch")  # 62
        with router:
            with corpus:
                with epoch:
                    pass
        assert ("serve.router", "corpus") in witness_edges()
        assert ("corpus", "serve.epoch") in witness_edges()

    def test_reentrant_reacquisition_allowed(self):
        with witness():
            session = make_lock("session", reentrant=True)  # 40
            corpus = make_lock("corpus", reentrant=True)  # 50
        with session:
            with corpus:
                with session:  # re-entrant: no new edge, no violation
                    pass
        assert ("corpus", "session") not in witness_edges()

    def test_condition_integration(self):
        # The coalescer wraps its witness lock in a threading.Condition;
        # wait/notify must work through the instrumented acquire/release.
        with witness():
            lock = make_lock("serve.coalescer")
        arrival = threading.Condition(lock)
        fired = []

        def waiter():
            with arrival:
                arrival.wait(timeout=5.0)
                fired.append(True)

        worker = threading.Thread(target=waiter)
        worker.start()
        while worker.is_alive():
            with arrival:
                arrival.notify_all()
            worker.join(timeout=0.01)
        assert fired == [True]

    def test_trylock_failure_leaves_no_hold(self):
        with witness():
            cache = make_lock("serve.cache")    # rank 30
            router = make_lock("serve.router")  # rank 10
        cache.acquire()
        errors = []

        def worker():
            try:
                assert cache.acquire(blocking=False) is False
                # If the failed acquire had left a phantom hold, taking the
                # lower-ranked router lock here would raise an inversion.
                with router:
                    pass
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join(timeout=5.0)
        cache.release()
        assert errors == []


# ----------------------------------------------------------------------------------------
# Integration: real serving traffic under the witness
# ----------------------------------------------------------------------------------------

class TestServingIntegration:
    def test_serving_traffic_witnesses_session_corpus_edge(self, tiny_corpus):
        with witness():
            compressed = compress_corpus(tiny_corpus)
            service = AnalyticsService(
                compressed, service_config=ServiceConfig(coalesce_window=0.0)
            )
            outcome = service.submit("word_count")
        assert outcome.result
        edges = witness_edges()
        assert ("session", "corpus") in edges


# ----------------------------------------------------------------------------------------
# Hold-time profiling and per-thread held-lock introspection
# ----------------------------------------------------------------------------------------

class TestHoldProfiles:
    def test_report_empty_until_a_lock_is_released(self):
        with witness():
            lock = make_lock("serve.cache")
            assert lockcheck.witness_report() == {}
            with lock:
                assert lockcheck.witness_report() == {}  # samples on release
            report = lockcheck.witness_report()
        profile = report["serve.cache"]
        assert profile.count == 1
        assert profile.rank == 30
        assert 0.0 <= profile.min <= profile.mean <= profile.max <= profile.total

    def test_profiles_aggregate_and_order_by_rank(self):
        with witness():
            router = make_lock("serve.router")      # rank 10
            cache = make_lock("serve.cache")        # rank 30
            for _ in range(3):
                with router:
                    pass
            with cache:
                time.sleep(0.01)
            report = lockcheck.witness_report()
        assert report["serve.router"].count == 3
        assert report["serve.cache"].count == 1
        assert report["serve.cache"].max >= 0.01
        ranks = [profile.rank for profile in report.values()]
        assert ranks == sorted(ranks)

    def test_reentrant_reacquisition_samples_outermost_hold_only(self):
        with witness():
            session = make_lock("session", reentrant=True)
            with session:
                with session:
                    pass
            report = lockcheck.witness_report()
        assert report["session"].count == 1

    def test_held_levels_tracks_the_current_thread_in_order(self):
        with witness():
            router = make_lock("serve.router")
            transport = make_lock("serve.transport")
            assert lockcheck.held_levels() == []
            with router:
                assert lockcheck.held_levels() == ["serve.router"]
                with transport:
                    assert lockcheck.held_levels() == [
                        "serve.router",
                        "serve.transport",
                    ]
                assert lockcheck.held_levels() == ["serve.router"]
            assert lockcheck.held_levels() == []

    def test_held_levels_is_per_thread(self):
        with witness():
            router = make_lock("serve.router")
            seen = []
            with router:
                worker = threading.Thread(
                    target=lambda: seen.append(lockcheck.held_levels())
                )
                worker.start()
                worker.join(timeout=5.0)
        assert seen == [[]]

    def test_empty_profile_mean_is_zero(self):
        profile = lockcheck.HoldProfile(
            level="serve.cache", rank=30, count=0, total=0.0, min=0.0, max=0.0
        )
        assert profile.mean == 0.0

    def test_reset_clears_hold_times(self):
        with witness():
            with make_lock("serve.cache"):
                pass
            assert lockcheck.witness_report()
            reset_witness()
            assert lockcheck.witness_report() == {}

    def test_serving_traffic_yields_consistent_profiles(self, tiny_corpus):
        with witness():
            compressed = compress_corpus(tiny_corpus)
            service = AnalyticsService(
                compressed, service_config=ServiceConfig(coalesce_window=0.0)
            )
            service.submit("word_count")
            report = lockcheck.witness_report()
        assert "session" in report
        assert "corpus" in report
        for profile in report.values():
            assert profile.count >= 1
            assert 0.0 <= profile.min <= profile.mean <= profile.max
            assert profile.total >= profile.max

    def test_process_pool_witnesses_transport_edge_and_profile(self, tiny_corpus):
        from repro.serve import ShardedAnalyticsService, ShardedServiceConfig

        with witness():
            compressed = compress_corpus(tiny_corpus)
            service = ShardedAnalyticsService(
                compressed,
                service_config=ServiceConfig(coalesce_window=0.0),
                sharded_config=ShardedServiceConfig(
                    num_shards=2, transport="process"
                ),
            )
            try:
                outcome = service.submit("word_count")
                # Reading the wire counters takes the transport lock under
                # the router lock: the declared router->transport edge.
                service.stats()
            finally:
                service.close()
            report = lockcheck.witness_report()
            edges = witness_edges()
        assert outcome.result
        assert ("serve.router", "serve.transport") in edges
        profile = report["serve.transport"]
        assert profile.count >= 1
        # The transport lock only guards counters and spawn state; if a
        # blocking pipe receive ever slipped under it, the max hold would
        # be the round trip itself (the recv tripwire guards this too).
        assert profile.max < 5.0
