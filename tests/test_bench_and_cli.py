"""Tests for the experiment harness, aggregation, table formatting and the CLI."""

from __future__ import annotations

import pytest

from repro.analytics.base import Task
from repro.bench.aggregate import geometric_mean, summarize_rows
from repro.bench.experiment import ExperimentConfig, ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.cli import build_parser, main
from repro.perf.counters import PhaseTiming
from repro.perf.platforms import CLUSTER_PLATFORM, PASCAL, VOLTA


@pytest.fixture(scope="module")
def small_runner() -> ExperimentRunner:
    """A runner over very small analogues so harness tests stay fast."""
    return ExperimentRunner(
        ExperimentConfig(dataset_scale=0.04, cluster_datasets=("C",), pcie_datasets=("C",))
    )


class TestExperimentRunner:
    def test_bundle_is_cached(self, small_runner):
        assert small_runner.bundle("D") is small_runner.bundle("D")

    def test_extrapolation_factor_above_one(self, small_runner):
        assert small_runner.bundle("D").extrapolation_factor > 1.0

    def test_gtadoc_and_cpu_results_agree(self, small_runner):
        gtadoc = small_runner.gtadoc_run("D", Task.WORD_COUNT)
        cpu = small_runner.cpu_tadoc_run("D", Task.WORD_COUNT)
        assert gtadoc.result == cpu.result

    def test_phase_timings_positive(self, small_runner):
        timing = small_runner.gtadoc_times("D", Task.WORD_COUNT, PASCAL)
        assert timing.initialization > 0
        assert timing.traversal > 0

    def test_gpu_platform_required_for_gtadoc_times(self, small_runner):
        with pytest.raises(ValueError):
            small_runner.gtadoc_times("D", Task.WORD_COUNT, CLUSTER_PLATFORM)

    def test_speedup_row_shows_gtadoc_winning(self, small_runner):
        row = small_runner.speedup_row("D", Task.WORD_COUNT, PASCAL)
        assert row.speedup_total > 1.0

    def test_sequence_tasks_speed_up_more_than_word_count(self, small_runner):
        """The paper's key per-task ordering."""
        word_count = small_runner.speedup_row("B", Task.WORD_COUNT, PASCAL).speedup_total
        sequence = small_runner.speedup_row("B", Task.SEQUENCE_COUNT, PASCAL).speedup_total
        assert sequence > word_count

    def test_baseline_for_dataset_c_is_cluster(self, small_runner):
        baseline_name, _times = small_runner.baseline_times("C", Task.WORD_COUNT, PASCAL)
        assert "cluster" in baseline_name

    def test_baseline_for_dataset_b_is_sequential(self, small_runner):
        baseline_name, _times = small_runner.baseline_times("B", Task.WORD_COUNT, PASCAL)
        assert "sequential" in baseline_name

    def test_speedup_grid_dimensions(self, small_runner):
        rows = small_runner.speedup_grid(datasets=["B", "D"], platforms=[PASCAL, VOLTA])
        assert len(rows) == 2 * 6 * 2

    def test_volta_not_slower_than_pascal(self, small_runner):
        pascal = small_runner.gtadoc_times("B", Task.WORD_COUNT, PASCAL).total
        volta = small_runner.gtadoc_times("B", Task.WORD_COUNT, VOLTA).total
        assert volta <= pascal * 1.5

    def test_gpu_uncompressed_times_positive(self, small_runner):
        timing = small_runner.gpu_uncompressed_times("B", Task.SORT, VOLTA)
        assert timing.total > 0

    def test_batch_amortization_reduces_work(self, small_runner):
        stats = small_runner.batch_amortization("D")
        assert stats.results_match
        assert stats.batch_launches < stats.sequential_launches
        assert stats.batch_ops < stats.sequential_ops
        assert stats.batch_init_launches < stats.sequential_init_launches
        assert 0.0 < stats.launch_reduction < 1.0
        assert 0.0 < stats.ops_reduction < 1.0

    def test_batch_run_cached(self, small_runner):
        assert small_runner.gtadoc_batch_run("D") is small_runner.gtadoc_batch_run("D")

    def test_runner_goes_through_backend_registry(self, small_runner):
        from repro.api import AnalyticsBackend

        backend = small_runner.backend("D", "gtadoc")
        assert isinstance(backend, AnalyticsBackend)
        assert backend is small_runner.backend("D", "gtadoc")
        # The runner's per-query semantics stay fresh-session (paper cost).
        assert not backend.amortize

    def test_runner_backends_cover_all_engines(self, small_runner):
        for name in ("cpu", "distributed", "gpu_uncompressed"):
            backend = small_runner.backend("D", name)
            assert backend.capabilities().name == name


class TestAggregation:
    def test_geometric_mean_basics(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 5]) == pytest.approx(5.0)

    def test_summarize_rows_keys(self, small_runner):
        rows = small_runner.speedup_grid(datasets=["B", "D"], platforms=[PASCAL])
        summary = summarize_rows(rows)
        for key in (
            "overall_speedup",
            "single_node_speedup",
            "sequence_count_speedup",
            "initialization_speedup",
            "traversal_speedup",
        ):
            assert summary[key] > 0

    def test_time_savings_between_zero_and_one(self, small_runner):
        rows = small_runner.speedup_grid(datasets=["D"], platforms=[PASCAL])
        summary = summarize_rows(rows)
        assert 0.0 <= summary["initialization_time_saving"] <= 1.0
        assert 0.0 <= summary["traversal_time_saving"] <= 1.0


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(line) for line in lines[3:]}) <= 2

    def test_save_report_writes_file(self, tmp_path):
        path = save_report("unit_test_report", "hello", directory=tmp_path)
        assert path.read_text().strip() == "hello"


class TestPhaseTimingHelpers:
    def test_zero_time_gives_infinite_speedup(self):
        fast = PhaseTiming(initialization=0.0, traversal=0.0)
        slow = PhaseTiming(initialization=1.0, traversal=1.0)
        speedups = fast.speedup_over(slow)
        assert speedups["total"] == float("inf")


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["compress", "--dataset", "D", "--output", "x.json"])
        assert args.command == "compress"

    def test_compress_run_info_workflow(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        assert main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)]) == 0
        assert compressed_path.exists()

        assert main(["info", "--compressed", str(compressed_path)]) == 0
        captured = capsys.readouterr()
        assert "compression ratio" in captured.out

        assert main(["run", "--compressed", str(compressed_path), "--task", "word_count"]) == 0
        captured = capsys.readouterr()
        assert "top results" in captured.out

    def test_run_with_forced_traversal(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "sequence_count",
                "--traversal",
                "top_down",
            ]
        ) == 0
        assert "sequence_count" in capsys.readouterr().out

    def test_compress_from_directory(self, tmp_path, capsys):
        source = tmp_path / "texts"
        source.mkdir()
        (source / "a.txt").write_text("alpha beta alpha beta gamma")
        (source / "b.txt").write_text("alpha beta gamma delta")
        output = tmp_path / "dir.json"
        assert main(["compress", "--input-dir", str(source), "--output", str(output)]) == 0
        assert output.exists()

    def test_run_all_tasks_as_batch(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(["run", "--compressed", str(compressed_path), "--task", "all"]) == 0
        out = capsys.readouterr().out
        assert "initialization charged once" in out
        # ``--task all`` covers the classic tasks; relational needs a
        # schema spec and has its own subcommand.
        for task in Task.all():
            assert task.value in out
        assert "relational" not in out

    def test_run_task_list_as_batch(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            ["run", "--compressed", str(compressed_path), "--task", "word_count,sort"]
        ) == 0
        out = capsys.readouterr().out
        assert "word_count" in out and "sort" in out
        assert "marginal launches" in out

    def test_run_rejects_unknown_task(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(["run", "--compressed", str(compressed_path), "--task", "bogus"]) == 2

    @pytest.mark.parametrize("top", ["0", "-3"])
    def test_run_rejects_non_positive_top(self, tmp_path, capsys, top):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            ["run", "--compressed", str(compressed_path), "--task", "word_count", "--top", top]
        ) == 2
        err = capsys.readouterr().err
        assert "--top must be a positive integer" in err

    def test_run_rejects_non_positive_sequence_length(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "sequence_count",
                "--sequence-length",
                "0",
            ]
        ) == 2
        assert "--sequence-length must be a positive integer" in capsys.readouterr().err

    def test_run_with_sequence_length_flag(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "sequence_count",
                "--sequence-length",
                "4",
                "--top",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sequence_count" in out
        # Each preview row is a 4-gram: four words plus the count column.
        preview = [line for line in out.splitlines() if line.startswith("  ") and "\t" in line]
        assert preview and all(len(line.split("\t")[0].split()) == 4 for line in preview)

    @pytest.mark.parametrize("backend", ["cpu", "reference"])
    def test_run_with_alternative_backends(self, tmp_path, capsys, backend):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "word_count",
                "--backend",
                backend,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"backend: {backend}" in out
        assert "top results" in out

    def test_run_rejects_traversal_on_unsupporting_backend(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "word_count",
                "--backend",
                "cpu",
                "--traversal",
                "bottom_up",
            ]
        ) == 2
        assert "does not support --traversal" in capsys.readouterr().err

    def test_single_and_batch_backend_results_agree(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        main(
            ["run", "--compressed", str(compressed_path), "--task", "word_count", "--top", "5"]
        )
        single_out = capsys.readouterr().out
        main(
            [
                "run",
                "--compressed",
                str(compressed_path),
                "--task",
                "word_count,sort",
                "--top",
                "5",
            ]
        )
        batch_out = capsys.readouterr().out
        single_preview = [line for line in single_out.splitlines() if "\t" in line]
        assert single_preview
        for line in single_preview:
            assert line in batch_out

    def test_bench_rejects_cluster_platform(self, capsys):
        assert main(["bench", "--platform", "10-node cluster", "--datasets", "D"]) == 2

    def test_bench_prints_speedups(self, capsys):
        assert main(["bench", "--platform", "Pascal", "--datasets", "D", "--scale", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "word_count" in out

    def test_serve_bench_replays_trace(self, capsys):
        assert main(
            [
                "serve-bench",
                "--dataset",
                "D",
                "--scale",
                "0.05",
                "--requests",
                "24",
                "--threads",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "result-cache hit rate" in out
        assert "results match serial" in out and "NO" not in out
        assert "launch reduction" in out

    def test_serve_bench_without_serial_baseline(self, tmp_path, capsys):
        compressed_path = tmp_path / "d.json"
        main(["compress", "--dataset", "D", "--scale", "0.05", "--output", str(compressed_path)])
        capsys.readouterr()
        assert main(
            [
                "serve-bench",
                "--compressed",
                str(compressed_path),
                "--requests",
                "16",
                "--no-serial-baseline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "served launches/query" in out
        assert "serial launches/query" not in out

    def test_serve_bench_rejects_bad_arguments(self, capsys):
        assert main(["serve-bench", "--dataset", "D", "--requests", "0"]) == 2
        assert "--requests" in capsys.readouterr().err
        assert main(["serve-bench", "--dataset", "D", "--threads", "0"]) == 2
        assert "--threads" in capsys.readouterr().err
        assert main(["serve-bench", "--dataset", "D", "--async", "--concurrency", "0"]) == 2
        assert "--concurrency" in capsys.readouterr().err

    def test_serve_bench_rejects_negative_window_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-bench", "--dataset", "D", "--coalesce-window-ms", "-1"])
        assert excinfo.value.code == 2
        assert "--coalesce-window-ms" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["inf", "-inf", "nan", "bogus"])
    def test_serve_bench_rejects_non_finite_windows(self, capsys, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-bench", "--dataset", "D", "--coalesce-window-ms", bad])
        assert excinfo.value.code == 2
        assert "--coalesce-window-ms" in capsys.readouterr().err

    def test_serve_bench_async_replays_trace(self, capsys):
        assert main(
            [
                "serve-bench",
                "--dataset",
                "D",
                "--scale",
                "0.05",
                "--requests",
                "16",
                "--async",
                "--concurrency",
                "16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "asyncio" in out
        assert "max in-flight requests" in out
        assert "results match serial" in out and "NO" not in out

    def test_serve_bench_sharded_replays_trace(self, capsys):
        assert main(
            [
                "serve-bench",
                "--dataset",
                "D",
                "--scale",
                "0.05",
                "--requests",
                "24",
                "--threads",
                "4",
                "--shards",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "threads+sharded" in out
        assert "queries per shard" in out
        assert "results match serial" in out and "NO" not in out

    def test_serve_bench_sharded_async_replays_trace(self, capsys):
        assert main(
            [
                "serve-bench",
                "--dataset",
                "D",
                "--scale",
                "0.05",
                "--requests",
                "16",
                "--shards",
                "2",
                "--async",
                "--concurrency",
                "16",
                "--no-serial-baseline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "asyncio+sharded" in out
        assert "placement network" in out

    @pytest.mark.parametrize("flag", ["--shards", "--replicas"])
    @pytest.mark.parametrize("bad", ["0", "-1", "bogus"])
    def test_serve_bench_rejects_bad_shard_counts_at_parse_time(self, capsys, flag, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-bench", "--dataset", "D", flag, bad])
        assert excinfo.value.code == 2
        assert flag in capsys.readouterr().err
