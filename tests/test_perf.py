"""Tests for counters, device specs, platforms, cost models and extrapolation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.cost_model import ClusterCostModel, CpuCostModel, GpuCostModel
from repro.perf.counters import CostCounter, GpuRunRecord, KernelStats, PhaseTiming
from repro.perf.extrapolation import (
    dataset_scale_factor,
    extrapolate_counter,
    extrapolate_gpu_record,
)
from repro.perf.platforms import CLUSTER_PLATFORM, PASCAL, TURING, VOLTA, get_platform, list_platforms
from repro.perf.specs import E5_2676_V3, GTX_1080, I7_7700K, RTX_2080_TI, TESLA_V100


class TestCounters:
    def test_charge_and_merge(self):
        counter = CostCounter()
        counter.charge(compute_ops=5, memory_bytes=10, hash_ops=2)
        other = CostCounter(compute_ops=1)
        counter.merge(other)
        assert counter.compute_ops == 6
        assert counter.total_ops == 6 + 2

    def test_scaled(self):
        counter = CostCounter(compute_ops=3, memory_bytes=4, network_messages=2)
        scaled = counter.scaled(10)
        assert scaled.compute_ops == 30
        assert scaled.network_messages == 20
        assert counter.compute_ops == 3  # original untouched

    def test_add_operator(self):
        total = CostCounter(compute_ops=1) + CostCounter(compute_ops=2)
        assert total.compute_ops == 3

    def test_kernel_stats_scaled_keeps_name(self):
        stats = KernelStats(name="k", num_threads=10, num_warps=1, warp_serial_ops=5)
        scaled = stats.scaled(3)
        assert scaled.name == "k"
        assert scaled.warp_serial_ops == 15

    def test_gpu_record_aggregates(self):
        record = GpuRunRecord()
        record.add_kernel(KernelStats(name="a", warp_serial_ops=5, atomic_conflicts=2))
        record.add_kernel(KernelStats(name="b", warp_serial_ops=7, atomic_conflicts=1))
        assert record.num_launches == 2
        assert record.total_warp_serial_ops == 12
        assert record.total_atomic_conflicts == 3

    def test_phase_timing_speedup(self):
        ours = PhaseTiming(initialization=1.0, traversal=2.0)
        baseline = PhaseTiming(initialization=10.0, traversal=40.0)
        speedups = ours.speedup_over(baseline)
        assert speedups["initialization"] == 10.0
        assert speedups["traversal"] == 20.0
        assert speedups["total"] == pytest.approx(50.0 / 3.0)


class TestSpecs:
    def test_warp_issue_rate(self):
        assert GTX_1080.warp_issue_rate_gwarps == pytest.approx(20 * 4 * 1.733)

    def test_peak_gops(self):
        assert GTX_1080.peak_gops == pytest.approx(2560 * 1.733)

    def test_pascal_compute_ratio_near_paper(self):
        """The paper quotes ~185x GPU/CPU peak ratio on the Pascal platform."""
        ratio = GTX_1080.peak_gops / I7_7700K.peak_gops
        assert 100 < ratio < 300

    def test_pascal_bandwidth_ratio_near_paper(self):
        """The paper quotes ~8.3x memory bandwidth ratio on the Pascal platform."""
        ratio = GTX_1080.memory_bandwidth_gb_s / I7_7700K.memory_bandwidth_gb_s
        assert 6 < ratio < 11

    def test_volta_has_most_bandwidth(self):
        assert TESLA_V100.memory_bandwidth_gb_s > RTX_2080_TI.memory_bandwidth_gb_s
        assert RTX_2080_TI.memory_bandwidth_gb_s > GTX_1080.memory_bandwidth_gb_s


class TestPlatforms:
    def test_table1_platform_keys(self):
        assert [platform.key for platform in list_platforms()] == [
            "Pascal",
            "Volta",
            "Turing",
            "10-node cluster",
        ]

    def test_gpu_only_filter(self):
        assert all(platform.has_gpu for platform in list_platforms(gpu_only=True))
        assert len(list_platforms(gpu_only=True)) == 3

    def test_cluster_platform_shape(self):
        assert CLUSTER_PLATFORM.num_nodes == 10
        assert CLUSTER_PLATFORM.gpu is None
        assert CLUSTER_PLATFORM.cpu == E5_2676_V3

    def test_get_platform_case_insensitive(self):
        assert get_platform("pascal") is PASCAL
        assert get_platform("VOLTA") is VOLTA

    def test_get_platform_unknown(self):
        with pytest.raises(KeyError):
            get_platform("Ampere")

    def test_summary_row_matches_table1(self):
        row = PASCAL.summary_row()
        assert row["GPU"] == "GeForce GTX 1080"
        assert row["Compiler"] == "CUDA 8"
        assert TURING.summary_row()["Compiler"] == "CUDA 11.0"


class TestCpuCostModel:
    def test_more_work_never_cheaper(self):
        model = CpuCostModel(I7_7700K)
        small = CostCounter(compute_ops=1e6, memory_bytes=1e6, hash_ops=1e4)
        large = CostCounter(compute_ops=2e6, memory_bytes=2e6, hash_ops=2e4)
        assert model.time_seconds(large) >= model.time_seconds(small)

    def test_hash_latency_dominates_pointer_chasing(self):
        model = CpuCostModel(I7_7700K)
        compute_bound = CostCounter(compute_ops=1e6)
        latency_bound = CostCounter(hash_ops=1e6)
        assert model.time_seconds(latency_bound) > model.time_seconds(compute_bound)

    def test_multithreading_helps(self):
        counter = CostCounter(compute_ops=1e9, memory_bytes=1e8, hash_ops=1e6)
        single = CpuCostModel(E5_2676_V3, threads=1).time_seconds(counter)
        multi = CpuCostModel(E5_2676_V3, threads=12).time_seconds(counter)
        assert multi < single

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0, max_value=1e9))
    def test_monotone_in_ops(self, ops_a, ops_b):
        model = CpuCostModel(I7_7700K)
        low, high = sorted([ops_a, ops_b])
        assert model.time_seconds(CostCounter(compute_ops=high)) >= model.time_seconds(
            CostCounter(compute_ops=low)
        )


class TestGpuCostModel:
    def test_launch_overhead_floor(self):
        model = GpuCostModel(GTX_1080)
        empty = KernelStats(name="noop", num_threads=1, num_warps=1)
        assert model.kernel_time_seconds(empty) >= GTX_1080.kernel_launch_overhead_s

    def test_atomic_conflicts_cost_extra(self):
        model = GpuCostModel(GTX_1080)
        base = KernelStats(name="k", warp_serial_ops=10, atomic_ops=1e7)
        conflicted = KernelStats(name="k", warp_serial_ops=10, atomic_ops=1e7, atomic_conflicts=1e7)
        assert model.kernel_time_seconds(conflicted) > model.kernel_time_seconds(base)

    def test_faster_gpu_is_faster(self):
        stats = KernelStats(name="k", warp_serial_ops=1e9, memory_bytes=1e9)
        record = GpuRunRecord(kernels=[stats])
        pascal = GpuCostModel(GTX_1080).time_seconds(record)
        volta = GpuCostModel(TESLA_V100).time_seconds(record)
        assert volta < pascal

    def test_pcie_bytes_add_time(self):
        model = GpuCostModel(GTX_1080)
        without = GpuRunRecord(kernels=[KernelStats(name="k")])
        with_pcie = GpuRunRecord(kernels=[KernelStats(name="k")], pcie_bytes=1e9)
        assert model.time_seconds(with_pcie) > model.time_seconds(without)

    def test_host_model_included(self):
        model = GpuCostModel(GTX_1080)
        record = GpuRunRecord(kernels=[KernelStats(name="k")])
        record.host_counter.charge(compute_ops=1e9)
        host_model = CpuCostModel(I7_7700K)
        assert model.time_seconds(record, host_model) > model.time_seconds(record)


class TestClusterCostModel:
    def test_straggler_bounds_compute(self):
        model = ClusterCostModel(node_spec=E5_2676_V3)
        fast = CostCounter(compute_ops=1e6)
        slow = CostCounter(compute_ops=1e10)
        time_balanced = model.time_seconds([fast, fast])
        time_straggler = model.time_seconds([fast, slow])
        assert time_straggler > time_balanced

    def test_shuffle_adds_network_time(self):
        model = ClusterCostModel(node_spec=E5_2676_V3)
        nodes = [CostCounter(compute_ops=1e6)]
        shuffle = CostCounter(network_bytes=1e9, network_messages=10)
        assert model.time_seconds(nodes, shuffle) > model.time_seconds(nodes)

    def test_framework_overhead_scales_with_stages(self):
        model = ClusterCostModel(node_spec=E5_2676_V3)
        nodes = [CostCounter()]
        assert model.time_seconds(nodes, num_stages=3) > model.time_seconds(nodes, num_stages=1)


class TestExtrapolation:
    def test_scale_factor(self):
        assert dataset_scale_factor(1000, 10) == 100.0
        assert dataset_scale_factor(5, 10) == 1.0

    def test_scale_factor_requires_positive_measurement(self):
        with pytest.raises(ValueError):
            dataset_scale_factor(100, 0)

    def test_counter_extrapolation_keeps_messages(self):
        counter = CostCounter(compute_ops=10, network_bytes=5, network_messages=3)
        scaled = extrapolate_counter(counter, 100)
        assert scaled.compute_ops == 1000
        assert scaled.network_bytes == 500
        assert scaled.network_messages == 3

    def test_counter_extrapolation_rejects_shrinking(self):
        with pytest.raises(ValueError):
            extrapolate_counter(CostCounter(), 0.5)

    def test_gpu_record_extrapolation_keeps_launch_count(self):
        record = GpuRunRecord(kernels=[KernelStats(name="k", warp_serial_ops=2)] * 3)
        scaled = extrapolate_gpu_record(record, 50)
        assert scaled.num_launches == 3
        assert scaled.kernels[0].warp_serial_ops == 100
