"""Tests for the Sequitur grammar-inference algorithm.

The two core invariants (digram uniqueness and rule utility) plus exact
round-trip reconstruction are checked on hand-picked sequences and with
property-based testing over random token streams.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.grammar import is_rule_ref
from repro.compression.sequitur import SequiturEncoder


def encode(sequence):
    encoder = SequiturEncoder()
    grammar = encoder.encode(sequence)
    return encoder, grammar


class TestBasics:
    def test_empty_sequence(self):
        _encoder, grammar = encode([])
        assert grammar.expand_root() == []
        assert len(grammar) == 1

    def test_single_token(self):
        _encoder, grammar = encode([7])
        assert grammar.expand_root() == [7]

    def test_no_repetition_creates_no_rules(self):
        _encoder, grammar = encode([1, 2, 3, 4, 5])
        assert len(grammar) == 1

    def test_simple_repetition_creates_rule(self):
        _encoder, grammar = encode([1, 2, 1, 2])
        assert len(grammar) == 2
        assert grammar.expand_root() == [1, 2, 1, 2]

    def test_classic_abcabc(self):
        _encoder, grammar = encode([1, 2, 3, 1, 2, 3])
        assert grammar.expand_root() == [1, 2, 3, 1, 2, 3]
        # One rule for "1 2 3" (possibly built from a nested "1 2" rule).
        assert len(grammar) >= 2

    def test_rule_reuse_across_occurrences(self):
        sequence = [1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]
        _encoder, grammar = encode(sequence)
        assert grammar.expand_root() == sequence

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            SequiturEncoder().encode([1, -2, 3])

    def test_encoder_single_use(self):
        encoder = SequiturEncoder()
        encoder.encode([1, 2, 1, 2])
        with pytest.raises(RuntimeError):
            encoder.encode([3, 4])

    def test_runs_of_identical_tokens(self):
        for length in range(1, 12):
            sequence = [5] * length
            _encoder, grammar = encode(sequence)
            assert grammar.expand_root() == sequence

    def test_rule_bodies_have_at_least_two_symbols(self):
        _encoder, grammar = encode([1, 2, 3, 1, 2, 3, 4, 1, 2])
        for rule in grammar.rules[1:]:
            assert len(rule) >= 2

    def test_every_non_root_rule_is_referenced(self):
        _encoder, grammar = encode([1, 2, 3, 1, 2, 3, 4, 1, 2, 4, 1, 2])
        referenced = set()
        for rule in grammar:
            referenced.update(rule.subrule_ids())
        for rule in grammar.rules[1:]:
            assert rule.rule_id in referenced


class TestInvariants:
    def test_digram_uniqueness_on_example(self):
        encoder, _grammar = encode([1, 2, 3, 1, 2, 3, 1, 2, 4, 5, 1, 2, 3])
        assert encoder.check_digram_uniqueness()

    def test_rule_utility_on_example(self):
        encoder, _grammar = encode([1, 2, 3, 1, 2, 3, 1, 2, 4, 5, 1, 2, 3])
        assert encoder.check_rule_utility()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=120))
    def test_roundtrip_small_alphabet(self, sequence):
        encoder, grammar = encode(sequence)
        assert grammar.expand_root() == sequence
        assert encoder.check_digram_uniqueness()
        assert encoder.check_rule_utility()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=200))
    def test_roundtrip_larger_alphabet(self, sequence):
        encoder, grammar = encode(sequence)
        assert grammar.expand_root() == sequence
        assert encoder.check_digram_uniqueness()
        assert encoder.check_rule_utility()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12),
        st.integers(min_value=2, max_value=6),
    )
    def test_periodic_sequences_compress(self, period, repeats):
        sequence = period * repeats
        _encoder, grammar = encode(sequence)
        assert grammar.expand_root() == sequence
        if len(sequence) >= 8 and len(set(period)) > 1:
            # Repetition should fold into at least one shared rule.
            assert len(grammar) >= 2

    def test_compression_is_effective_on_redundant_input(self):
        sequence = [1, 2, 3, 4, 5] * 50
        _encoder, grammar = encode(sequence)
        assert grammar.total_symbols() < len(sequence) / 3

    def test_grammar_symbols_reference_valid_rules(self):
        _encoder, grammar = encode([1, 2, 3, 4, 1, 2, 3, 4, 5, 1, 2])
        for rule in grammar:
            for symbol in rule.symbols:
                if is_rule_ref(symbol):
                    assert 0 <= -symbol - 1 < len(grammar)
