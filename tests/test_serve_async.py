"""Asyncio serving tests: event-driven coalescing, executor dispatch, adapter.

The centrepiece mirrors the threaded concurrency suite:
:class:`~repro.serve.AsyncAnalyticsService` replaying the seeded mixed
trace must produce results bit-identical to serial per-query execution
while coalescing at least as well as the threaded service on the same
trace.  The coalescer-level tests pin the event-driven behaviour — a
window closes *early* when the micro-batch fills or the corpus is
invalidated, instead of sleeping out its timeout.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time

import pytest

from repro.analytics.base import Task, results_equal
from repro.api import Query, open_backend
from repro.api.backend import AnalyticsBackend
from repro.api.backends import GTadocBackend
from repro.serve import (
    AsyncAnalyticsService,
    AsyncServeBackend,
    ServiceConfig,
    TraceConfig,
    replay_trace,
    replay_trace_async,
    synthesize_trace,
)

NUM_THREADS = 6


# ----------------------------------------------------------------------------------------
# Event-driven coalescing
# ----------------------------------------------------------------------------------------

class TestAsyncCoalescing:
    def test_gathered_compatible_queries_share_one_micro_batch(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.05),
        )
        try:
            async def drive():
                return await asyncio.gather(
                    *(service.submit(Query(task=task)) for task in Task.all())
                )

            outcomes = asyncio.run(drive())
        finally:
            service.close()
        stats = service.stats()
        assert stats.micro_batches == 1
        assert stats.executed_queries == len(Task.all())
        assert all(outcome.details["batch_size"] == len(Task.all()) for outcome in outcomes)
        assert all(outcome.details["coalesced"] for outcome in outcomes)

    def test_window_closes_early_when_batch_fills(self, tiny_compressed):
        window = 5.0  # far longer than the test may take: must close by event
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(
                cache_results=False, coalesce_window=window, max_batch_size=len(Task.all())
            ),
        )
        try:
            async def drive():
                return await asyncio.gather(
                    *(service.submit(Query(task=task)) for task in Task.all())
                )

            start = time.monotonic()
            outcomes = asyncio.run(drive())
            elapsed = time.monotonic() - start
        finally:
            service.close()
        assert elapsed < window / 2, "a full batch must close the window early"
        assert service.stats().micro_batches == 1
        assert len(outcomes) == len(Task.all())

    def test_invalidate_closes_an_open_window(self, tiny_compressed, tiny_reference):
        window = 5.0
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=window),
        )
        try:
            async def drive():
                pending = asyncio.create_task(service.submit(Query(task=Task.WORD_COUNT)))
                await asyncio.sleep(0.05)  # the leader is holding its window open
                service.invalidate(tiny_compressed)
                return await asyncio.wait_for(pending, timeout=window / 2)

            start = time.monotonic()
            outcome = asyncio.run(drive())
            elapsed = time.monotonic() - start
        finally:
            service.close()
        assert elapsed < window / 2, "invalidation must close the open window"
        # The in-flight query still answers for the content it addressed.
        assert outcome.result == tiny_reference.run(Task.WORD_COUNT)

    def test_sequential_submits_do_not_coalesce(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        try:
            async def drive():
                for task in (Task.WORD_COUNT, Task.SORT):
                    await service.submit(Query(task=task))

            asyncio.run(drive())
        finally:
            service.close()
        stats = service.stats()
        assert stats.micro_batches == 2
        assert stats.coalesced_queries == 0
        # Every leader retired with an empty queue; no group records linger.
        assert service._coalescer._groups == {}

    def test_error_reaches_only_the_offending_caller(self, tiny_compressed):
        service = AsyncAnalyticsService(tiny_compressed)
        try:
            async def drive():
                with pytest.raises(ValueError, match="unknown file"):
                    await service.submit(Query(task=Task.WORD_COUNT, files=("missing.txt",)))
                return await service.submit(Query(task=Task.WORD_COUNT))

            outcome = asyncio.run(drive())
        finally:
            service.close()
        assert outcome.result
        assert service.stats().queries == 1

    def test_async_run_batch_groups_directly(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        mix = [Query(task=task) for task in Task.all()] + [Query(task=Task.SORT, top_k=3)]
        try:
            outcomes = asyncio.run(service.run_batch(mix))
        finally:
            service.close()
        assert [outcome.task for outcome in outcomes] == [query.task for query in mix]
        assert service.stats().micro_batches == 1
        serial = GTadocBackend(tiny_compressed, amortize=False)
        for query, outcome in zip(mix, outcomes):
            assert results_equal(query.task, outcome.result, serial.run(query).result)


# ----------------------------------------------------------------------------------------
# Cancellation safety (client timeouts are routine on an async front end)
# ----------------------------------------------------------------------------------------

class TestAsyncCancellation:
    def test_cancelled_leader_does_not_wedge_the_group(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.5),
        )
        try:
            async def drive():
                leader = asyncio.create_task(service.submit(Query(task=Task.WORD_COUNT)))
                await asyncio.sleep(0.05)  # the leader is holding its window open
                leader.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await leader
                # The group must keep serving new compatible queries.
                return await asyncio.wait_for(
                    service.submit(Query(task=Task.WORD_COUNT)), timeout=5.0
                )

            outcome = asyncio.run(drive())
        finally:
            service.close()
        assert outcome.result
        assert service._coalescer._groups == {}

    def test_cancelled_leader_hands_followers_to_a_successor(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.5),
        )
        try:
            async def drive():
                leader = asyncio.create_task(service.submit(Query(task=Task.WORD_COUNT)))
                await asyncio.sleep(0.05)
                follower = asyncio.create_task(service.submit(Query(task=Task.SORT)))
                await asyncio.sleep(0.05)
                leader.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await leader
                return await asyncio.wait_for(follower, timeout=5.0)

            outcome = asyncio.run(drive())
        finally:
            service.close()
        assert outcome.result  # served despite its leader being cancelled
        assert service._coalescer._groups == {}

    def test_successor_cancelled_between_promotion_and_resumption(self, tiny_compressed):
        """The narrowest gap: a follower is promoted (its future resolved)
        and then cancelled before its coroutine resumes; the group must
        hand leadership on instead of wedging."""
        from repro.serve import AsyncCoalescedRequest, AsyncQueryCoalescer

        async def drive():
            coalescer = AsyncQueryCoalescer(window=0.0, max_batch=1)
            gate = asyncio.Event()
            calls = []

            async def execute(batch):
                calls.append([slot.query.task for slot in batch])
                if len(calls) == 1:
                    await gate.wait()
                for slot in batch:
                    slot.outcome = slot.query.task

            leader_request = AsyncCoalescedRequest(Query(task=Task.WORD_COUNT))
            leader = asyncio.create_task(coalescer.submit("g", leader_request, execute))
            await asyncio.sleep(0.01)  # the leader's batch is blocked in execute
            follower_request = AsyncCoalescedRequest(Query(task=Task.SORT))
            follower = asyncio.create_task(
                coalescer.submit("g", follower_request, execute)
            )
            # Registered before the follower's first await, so it fires
            # ahead of the task wakeup when promotion resolves the future:
            # the cancellation lands exactly in the promotion gap.
            follower_request.done.add_done_callback(lambda _f: follower.cancel())
            await asyncio.sleep(0.01)  # the follower is queued and waiting
            gate.set()  # leader drains, retires, promotes the follower
            with pytest.raises(asyncio.CancelledError):
                await follower
            await leader
            # The group must not be orphaned: a new request is serviceable.
            fresh = AsyncCoalescedRequest(Query(task=Task.WORD_COUNT))
            await asyncio.wait_for(coalescer.submit("g", fresh, execute), timeout=5.0)
            assert fresh.outcome is Task.WORD_COUNT
            assert coalescer._groups == {}

        asyncio.run(drive())

    def test_cancelled_follower_does_not_block_the_batch(self, tiny_compressed):
        service = AsyncAnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.3),
        )
        try:
            async def drive():
                leader = asyncio.create_task(service.submit(Query(task=Task.WORD_COUNT)))
                await asyncio.sleep(0.05)
                follower = asyncio.create_task(service.submit(Query(task=Task.SORT)))
                await asyncio.sleep(0.05)
                follower.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await follower
                return await asyncio.wait_for(leader, timeout=5.0)

            outcome = asyncio.run(drive())
        finally:
            service.close()
        assert outcome.result
        assert service._coalescer._groups == {}


# ----------------------------------------------------------------------------------------
# Trace replay: the acceptance criterion
# ----------------------------------------------------------------------------------------

class TestAsyncReplay:
    def test_seeded_trace_bit_identical_and_coalesces_at_least_as_well(
        self, few_files_compressed
    ):
        trace = synthesize_trace(
            few_files_compressed.file_names, TraceConfig(num_requests=32, seed=5)
        )
        threaded = replay_trace(
            few_files_compressed, trace, num_threads=NUM_THREADS, serial_baseline=False
        )
        report = replay_trace_async(few_files_compressed, trace, concurrency=len(trace))
        assert report.mode == "asyncio"
        assert report.results_match
        assert report.stats.kernel_launches < report.serial_launches
        assert report.served_launches_per_query < report.serial_launches_per_query
        # Event-driven windows with the whole trace in flight must coalesce
        # at least as well as the 6-thread service on the same trace.
        assert report.stats.mean_batch_size >= threaded.stats.mean_batch_size

    def test_concurrency_bound_is_validated(self, tiny_compressed):
        with pytest.raises(ValueError):
            replay_trace_async(tiny_compressed, [], concurrency=0)

    def test_repeated_queries_hit_the_result_cache_across_bursts(self, tiny_compressed):
        service = AsyncAnalyticsService(tiny_compressed)
        query = Query(task=Task.SORT, top_k=3)
        try:
            async def drive():
                first = await service.submit(query)
                second = await service.submit(query)
                return first, second

            first, second = asyncio.run(drive())
        finally:
            service.close()
        assert first.details["result_cache"] == "miss"
        assert second.details["result_cache"] == "hit"
        assert second.result == first.result


# ----------------------------------------------------------------------------------------
# The sync adapter (the registered "serve_async" backend)
# ----------------------------------------------------------------------------------------

class TestAsyncServeBackend:
    def test_open_backend_returns_the_adapter(self, tiny_compressed):
        backend = open_backend("serve_async", tiny_compressed)
        try:
            assert isinstance(backend, AsyncServeBackend)
            assert isinstance(backend, AnalyticsBackend)
            capabilities = backend.capabilities()
            assert capabilities.name == "serve_async"
            assert capabilities.amortizes_batches and capabilities.compressed_domain
        finally:
            backend.close()

    def test_adapter_matches_serial_execution(self, tiny_compressed):
        backend = open_backend("serve_async", tiny_compressed)
        try:
            outcome = backend.run(Query(task=Task.WORD_COUNT))
            serial = GTadocBackend(tiny_compressed, amortize=False).run(
                Query(task=Task.WORD_COUNT)
            )
            assert outcome.backend == "serve_async"
            assert outcome.result == serial.result
        finally:
            backend.close()

    def test_adapter_run_batch_coalesces(self, tiny_compressed):
        backend = open_backend(
            "serve_async", tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        try:
            outcomes = backend.run_batch(
                [Query(task=Task.SORT, top_k=2), Query(task=Task.SORT, top_k=4)]
            )
            assert [outcome.details["batch_size"] for outcome in outcomes] == [2, 2]
            assert backend.stats().micro_batches == 1
        finally:
            backend.close()

    def test_concurrent_sync_callers_coalesce_through_the_loop(self, tiny_compressed):
        backend = AsyncServeBackend(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.05),
        )
        tasks = Task.all()
        barrier = threading.Barrier(len(tasks))
        outcomes = {}

        def worker(task: Task) -> None:
            barrier.wait()
            outcomes[task] = backend.submit(Query(task=task))

        try:
            threads = [threading.Thread(target=worker, args=(task,)) for task in tasks]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = backend.stats()
        finally:
            backend.close()
        assert stats.executed_queries == len(tasks)
        assert stats.micro_batches < len(tasks)
        assert stats.coalesced_queries >= 2
        assert any(outcome.details["batch_size"] > 1 for outcome in outcomes.values())

    def test_closed_adapter_refuses_work(self, tiny_compressed):
        backend = AsyncServeBackend(tiny_compressed)
        backend.run(Query(task=Task.WORD_COUNT))
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            backend.run(Query(task=Task.SORT))

    def test_close_unblocks_inflight_sync_callers(self, tiny_compressed):
        backend = AsyncServeBackend(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        started = threading.Event()
        hold = threading.Event()
        original = backend.service._execute_batch

        def slow_execute(entry, batch):
            started.set()
            hold.wait()
            original(entry, batch)

        backend.service._execute_batch = slow_execute
        failures = []

        def caller() -> None:
            try:
                backend.submit(Query(task=Task.WORD_COUNT))
            except BaseException as error:
                failures.append(error)

        worker = threading.Thread(target=caller)
        worker.start()
        started.wait()  # the caller's engine work is in flight
        releaser = threading.Timer(0.2, hold.set)  # lets close() drain the executor
        releaser.start()
        backend.close()  # must cancel the in-flight call, not strand it
        worker.join(timeout=5.0)
        releaser.join()
        assert not worker.is_alive(), "in-flight caller was left blocked by close()"
        assert len(failures) == 1
        assert isinstance(
            failures[0], (asyncio.CancelledError, concurrent.futures.CancelledError)
        )
