"""Integration tests for the G-TADOC engine (all tasks vs the reference)."""

from __future__ import annotations

import pytest

from repro.analytics.base import Task, results_equal
from repro.core.engine import GTadoc, GTadocConfig
from repro.core.strategy import TraversalStrategy
from repro.core.tuning import GreedyParameterTuner
from repro.perf.specs import TESLA_V100


@pytest.fixture(scope="module")
def tiny_engine(tiny_compressed) -> GTadoc:
    return GTadoc(tiny_compressed)


@pytest.fixture(scope="module")
def many_files_engine(many_files_compressed) -> GTadoc:
    return GTadoc(many_files_compressed)


@pytest.fixture(scope="module")
def few_files_engine(few_files_compressed) -> GTadoc:
    return GTadoc(few_files_compressed)


class TestCorrectness:
    @pytest.mark.parametrize("task", Task.all())
    def test_tiny_corpus_all_tasks(self, tiny_engine, tiny_reference, task):
        outcome = tiny_engine.run(task)
        assert results_equal(task, outcome.result, tiny_reference.run(task))

    @pytest.mark.parametrize("task", Task.all())
    def test_many_files_all_tasks(self, many_files_engine, many_files_reference, task):
        outcome = many_files_engine.run(task)
        assert results_equal(task, outcome.result, many_files_reference.run(task))

    @pytest.mark.parametrize("task", Task.all())
    def test_few_files_all_tasks(self, few_files_engine, few_files_reference, task):
        outcome = few_files_engine.run(task)
        assert results_equal(task, outcome.result, few_files_reference.run(task))

    @pytest.mark.parametrize(
        "task",
        [t for t in Task.all() if t is not Task.SEQUENCE_COUNT],
    )
    @pytest.mark.parametrize("strategy", [TraversalStrategy.TOP_DOWN, TraversalStrategy.BOTTOM_UP])
    def test_forced_traversal_directions(self, few_files_engine, few_files_reference, task, strategy):
        outcome = few_files_engine.run(task, traversal=strategy)
        assert outcome.strategy is strategy
        assert results_equal(task, outcome.result, few_files_reference.run(task))

    def test_single_file_corpus(self, single_file_compressed, single_file_corpus):
        from repro.analytics.reference import UncompressedAnalytics

        engine = GTadoc(single_file_compressed)
        reference = UncompressedAnalytics(single_file_corpus)
        for task in Task.all():
            assert results_equal(task, engine.run(task).result, reference.run(task))

    def test_string_task_names_accepted(self, tiny_engine, tiny_reference):
        outcome = tiny_engine.run("word_count")
        assert results_equal(Task.WORD_COUNT, outcome.result, tiny_reference.run(Task.WORD_COUNT))

    def test_custom_sequence_length(self, tiny_compressed, tiny_corpus):
        from repro.analytics.reference import UncompressedAnalytics

        engine = GTadoc(tiny_compressed, config=GTadocConfig(sequence_length=4))
        reference = UncompressedAnalytics(tiny_corpus, sequence_length=4)
        outcome = engine.run(Task.SEQUENCE_COUNT)
        assert results_equal(Task.SEQUENCE_COUNT, outcome.result, reference.run(Task.SEQUENCE_COUNT))

    def test_run_all_covers_every_task(self, tiny_engine):
        outcomes = tiny_engine.run_all()
        assert set(outcomes) == set(Task.all())


class TestExecutionMetadata:
    def test_phases_are_recorded_separately(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT)
        assert outcome.init_record.num_launches >= 1
        assert outcome.traversal_record.num_launches >= 2

    def test_topdown_kernels_present(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.TOP_DOWN)
        names = {kernel.name for kernel in outcome.traversal_record.kernels}
        assert "topDownKernel" in names
        assert "reduceResultKernel" in names

    def test_bottomup_kernels_split_across_phases(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP)
        init_names = {kernel.name for kernel in outcome.init_record.kernels}
        traversal_names = {kernel.name for kernel in outcome.traversal_record.kernels}
        assert "genLocTblBoundKernel" in init_names
        assert "genLocTblKernel" in traversal_names

    def test_sequence_kernels_split_across_phases(self, few_files_engine):
        outcome = few_files_engine.run(Task.SEQUENCE_COUNT)
        init_names = {kernel.name for kernel in outcome.init_record.kernels}
        traversal_names = {kernel.name for kernel in outcome.traversal_record.kernels}
        assert "initHeadTailKernel" in init_names
        assert "sequenceRuleKernel" in traversal_names
        assert "sequenceMergeKernel" in traversal_names

    def test_memory_pool_used_by_default(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP)
        assert outcome.memory_pool_bytes > 0

    def test_memory_pool_can_be_disabled(self, few_files_compressed):
        engine = GTadoc(few_files_compressed, config=GTadocConfig(use_memory_pool=False))
        outcome = engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP)
        assert outcome.memory_pool_bytes == 0

    def test_pcie_transfer_recorded_when_enabled(self, few_files_compressed):
        engine = GTadoc(few_files_compressed, config=GTadocConfig(needs_pcie_transfer=True))
        outcome = engine.run(Task.WORD_COUNT)
        assert outcome.init_record.pcie_bytes > 0

    def test_strategy_decision_absent_when_forced(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.TOP_DOWN)
        assert outcome.strategy_decision is None

    def test_strategy_decision_present_when_selected(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT)
        assert outcome.strategy_decision is not None

    def test_scheduler_summary_reported(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT)
        assert outcome.scheduler_summary["rules"] == few_files_engine.layout.num_rules

    def test_atomic_traffic_recorded(self, few_files_engine):
        outcome = few_files_engine.run(Task.WORD_COUNT, traversal=TraversalStrategy.TOP_DOWN)
        assert sum(kernel.atomic_ops for kernel in outcome.traversal_record.kernels) > 0

    def test_layout_cached_across_runs(self, few_files_engine):
        first = few_files_engine.layout
        few_files_engine.run(Task.SORT)
        assert few_files_engine.layout is first


class TestTuning:
    def test_greedy_tuner_returns_candidate_from_grid(self, tiny_compressed):
        tuner = GreedyParameterTuner(
            tiny_compressed,
            TESLA_V100,
            threshold_candidates=(8.0, 16.0),
            group_candidates=(64, 128),
        )
        outcome = tuner.tune()
        assert outcome.config.oversize_threshold in (8.0, 16.0)
        assert outcome.config.max_group_size in (64, 128)
        assert set(outcome.evaluated) == {"oversize_threshold", "max_group_size"}

    def test_tuned_config_still_correct(self, tiny_compressed, tiny_reference):
        tuner = GreedyParameterTuner(
            tiny_compressed, TESLA_V100, threshold_candidates=(4.0,), group_candidates=(32,)
        )
        config = tuner.tune().config
        engine = GTadoc(tiny_compressed, config=config)
        outcome = engine.run(Task.WORD_COUNT)
        assert results_equal(Task.WORD_COUNT, outcome.result, tiny_reference.run(Task.WORD_COUNT))
