"""Tests for the session/plan execution architecture.

Covers the batch execution path (``GTadoc.run_batch`` / ``run_all``),
the :class:`DeviceSession` state cache with config invalidation, the
task-plan registry, and the amortization regression: a batch must charge
the Figure-3 initialization phase exactly once and launch strictly fewer
kernels than the equivalent sequence of fresh single-task runs.
"""

from __future__ import annotations

import pytest

from repro.analytics.base import Task
from repro.analytics.reference import UncompressedAnalytics
from repro.core.engine import GTadoc, GTadocBatchResult, GTadocConfig
from repro.core.plans import PLAN_REGISTRY, plan_for
from repro.core.session import (
    BASE_INIT,
    BOTTOMUP_BOUNDS,
    FILE_WEIGHTS,
    LOCAL_TABLES,
    RULE_WEIGHTS,
    DeviceSession,
    sequence_buffers_key,
)
from repro.core.strategy import TraversalStrategy


def _all_batch_records(batch: GTadocBatchResult):
    yield batch.init_record
    yield batch.shared_record
    for result in batch.values():
        yield result.init_record
        yield result.traversal_record


def _count_kernel(batch: GTadocBatchResult, name: str) -> int:
    return sum(
        1 for record in _all_batch_records(batch) for kernel in record.kernels if kernel.name == name
    )


class TestBatchEquivalence:
    @pytest.mark.parametrize("task", Task.all())
    def test_batch_results_bit_identical_to_single_runs(self, few_files_compressed, task):
        batch = GTadoc(few_files_compressed).run_batch()
        fresh = GTadoc(few_files_compressed).run(task)
        assert batch[task].result == fresh.result
        assert batch[task].strategy is fresh.strategy

    @pytest.mark.parametrize("task", Task.all())
    def test_batch_equivalence_many_files(self, many_files_compressed, task):
        batch = GTadoc(many_files_compressed).run_batch()
        fresh = GTadoc(many_files_compressed).run(task)
        assert batch[task].result == fresh.result

    def test_batch_accepts_task_subsets_and_strings(self, tiny_compressed):
        batch = GTadoc(tiny_compressed).run_batch(["word_count", Task.SORT])
        assert batch.tasks == [Task.WORD_COUNT, Task.SORT]
        assert batch["word_count"].result == batch[Task.WORD_COUNT].result

    def test_batch_deduplicates_repeated_tasks(self, tiny_compressed):
        batch = GTadoc(tiny_compressed).run_batch([Task.WORD_COUNT, "word_count", Task.SORT])
        assert batch.tasks == [Task.WORD_COUNT, Task.SORT]
        # One marginal execution per distinct task.
        single = GTadoc(tiny_compressed).run_batch([Task.WORD_COUNT, Task.SORT])
        assert batch.total_kernel_launches == single.total_kernel_launches

    def test_unknown_string_key_raises_key_error(self, tiny_compressed):
        batch = GTadoc(tiny_compressed).run_batch([Task.WORD_COUNT])
        assert "bogus" not in batch
        assert batch.get("bogus") is None
        with pytest.raises(KeyError):
            batch["bogus"]

    def test_forced_traversal_respected_in_batch(self, few_files_compressed):
        batch = GTadoc(few_files_compressed).run_batch(
            [Task.WORD_COUNT, Task.TERM_VECTOR], traversal=TraversalStrategy.BOTTOM_UP
        )
        assert batch[Task.WORD_COUNT].strategy is TraversalStrategy.BOTTOM_UP
        assert batch[Task.TERM_VECTOR].strategy is TraversalStrategy.BOTTOM_UP

    def test_batch_is_mapping(self, tiny_compressed):
        batch = GTadoc(tiny_compressed).run_all()
        assert set(batch) == set(Task.all())
        assert len(batch) == len(Task.all())
        assert Task.WORD_COUNT in batch


class TestAmortization:
    def test_init_phase_runs_exactly_once_in_run_all(self, few_files_compressed):
        batch = GTadoc(few_files_compressed).run_all()
        assert _count_kernel(batch, "dataStructurePrepKernel") == 1
        # The shared init lives on the batch record, not on any task.
        for result in batch.values():
            assert result.init_record.num_launches == 0

    def test_run_all_launches_strictly_below_per_run_sum(self, few_files_compressed):
        batch = GTadoc(few_files_compressed).run_all()
        per_run_sum = sum(
            GTadoc(few_files_compressed).run(task).total_kernel_launches for task in Task.all()
        )
        assert batch.total_kernel_launches < per_run_sum

    def test_run_all_launches_strictly_below_per_run_sum_many_files(self, many_files_compressed):
        batch = GTadoc(many_files_compressed).run_all()
        per_run_sum = sum(
            GTadoc(many_files_compressed).run(task).total_kernel_launches for task in Task.all()
        )
        assert batch.total_kernel_launches < per_run_sum

    def test_second_batch_charges_no_shared_work(self, few_files_compressed):
        engine = GTadoc(few_files_compressed)
        first = engine.run_all()
        second = engine.run_all()
        assert first.shared_kernel_launches > 0
        assert second.shared_kernel_launches == 0
        for task in Task.all():
            assert second[task].result == first[task].result

    def test_pcie_transfer_charged_once_per_batch(self, few_files_compressed):
        engine = GTadoc(few_files_compressed, config=GTadocConfig(needs_pcie_transfer=True))
        batch = engine.run_all()
        assert batch.init_record.pcie_bytes > 0
        for result in batch.values():
            assert result.init_record.pcie_bytes == 0
            assert result.traversal_record.pcie_bytes == 0

    def test_marginal_records_contain_only_task_kernels(self, few_files_compressed):
        batch = GTadoc(few_files_compressed).run_batch(
            [Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP
        )
        marginal_names = {
            kernel.name for kernel in batch[Task.WORD_COUNT].traversal_record.kernels
        }
        assert marginal_names == {"reduceResultKernel"}
        shared_names = {kernel.name for kernel in batch.shared_record.kernels}
        assert "genLocTblKernel" in shared_names
        init_names = {kernel.name for kernel in batch.init_record.kernels}
        assert "genLocTblBoundKernel" in init_names
        assert "dataStructurePrepKernel" in init_names


class TestDeviceSession:
    def test_state_built_once_and_cached(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        first = session.state(RULE_WEIGHTS)
        second = session.state(RULE_WEIGHTS)
        assert first is second

    def test_local_tables_pull_in_bounds_dependency(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        session.ensure(LOCAL_TABLES)
        assert session.has_state(BOTTOMUP_BOUNDS)

    def test_fresh_shares_layout_but_not_state(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        session.ensure(BASE_INIT, RULE_WEIGHTS)
        clone = session.fresh()
        assert clone.layout is session.layout
        assert not clone.has_state(RULE_WEIGHTS)

    def test_drain_splits_phases(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        session.ensure(BASE_INIT, BOTTOMUP_BOUNDS, LOCAL_TABLES, RULE_WEIGHTS)
        init_record, shared_record = session.drain_new_records()
        init_names = {kernel.name for kernel in init_record.kernels}
        shared_names = {kernel.name for kernel in shared_record.kernels}
        assert "dataStructurePrepKernel" in init_names
        assert "genLocTblBoundKernel" in init_names
        assert "genLocTblKernel" in shared_names
        assert "topDownKernel" in shared_names
        # A second drain with nothing new is empty.
        init_record, shared_record = session.drain_new_records()
        assert init_record.num_launches == 0
        assert shared_record.num_launches == 0

    def test_configure_with_changed_config_invalidates(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        session.ensure(RULE_WEIGHTS, sequence_buffers_key(3))
        session.configure(GTadocConfig(sequence_length=4))
        assert not session.has_state(RULE_WEIGHTS)
        assert not session.has_state(sequence_buffers_key(3))
        assert session.cached_keys == ()

    def test_configure_with_same_config_keeps_state(self, tiny_compressed):
        session = DeviceSession(tiny_compressed, GTadocConfig())
        session.ensure(RULE_WEIGHTS)
        session.configure(GTadocConfig())
        assert session.has_state(RULE_WEIGHTS)

    def test_layout_survives_invalidation(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        layout = session.layout
        session.invalidate()
        assert session.layout is layout

    def test_per_length_sequence_buffers_coexist(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        three = session.state(sequence_buffers_key(3))
        four = session.state(sequence_buffers_key(4))
        assert three.sequence_length == 3
        assert four.sequence_length == 4
        assert session.has_state(sequence_buffers_key(3))
        assert session.has_state(sequence_buffers_key(4))

    def test_engine_configure_recomputes_sequence_results(self, tiny_compressed, tiny_corpus):
        engine = GTadoc(tiny_compressed)
        first = engine.run_batch([Task.SEQUENCE_COUNT])[Task.SEQUENCE_COUNT].result
        engine.configure(GTadocConfig(sequence_length=4))
        second = engine.run_batch([Task.SEQUENCE_COUNT])[Task.SEQUENCE_COUNT].result
        reference = UncompressedAnalytics(tiny_corpus, sequence_length=4)
        assert second == reference.run(Task.SEQUENCE_COUNT)
        assert first != second


class TestMemoryPool:
    def test_bottomup_batch_reports_pooled_bytes(self, few_files_compressed):
        batch = GTadoc(few_files_compressed).run_batch(
            [Task.WORD_COUNT, Task.TERM_VECTOR], traversal=TraversalStrategy.BOTTOM_UP
        )
        assert batch.memory_pool_bytes > 0
        assert batch[Task.WORD_COUNT].memory_pool_bytes > 0

    def test_pool_shared_without_double_allocation(self, few_files_compressed):
        # Two bottom-up tasks plus sequence count on one session: the pool
        # must serve local tables and head/tail buffers side by side.
        engine = GTadoc(few_files_compressed)
        batch = engine.run_batch(
            [Task.WORD_COUNT, Task.INVERTED_INDEX, Task.SEQUENCE_COUNT],
            traversal=TraversalStrategy.BOTTOM_UP,
        )
        pool = engine.session.memory_pool
        assert pool is not None
        assert pool.check_no_overlap()
        assert batch.memory_pool_bytes == pool.used_bytes

    def test_per_task_pool_bytes_are_marginal_and_order_independent(self, few_files_compressed):
        tasks = [Task.WORD_COUNT, Task.SEQUENCE_COUNT]
        forward = GTadoc(few_files_compressed).run_batch(
            tasks, traversal=TraversalStrategy.BOTTOM_UP
        )
        reverse = GTadoc(few_files_compressed).run_batch(
            list(reversed(tasks)), traversal=TraversalStrategy.BOTTOM_UP
        )
        for task in tasks:
            # Marginal attribution is stable across batch orderings, modulo
            # the pool's 32-byte alignment padding landing on either side.
            difference = abs(forward[task].memory_pool_bytes - reverse[task].memory_pool_bytes)
            assert difference <= 64
        assert forward.memory_pool_bytes == sum(
            result.memory_pool_bytes for result in forward.values()
        )

    def test_pool_disabled_reports_zero(self, few_files_compressed):
        engine = GTadoc(few_files_compressed, config=GTadocConfig(use_memory_pool=False))
        batch = engine.run_batch([Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP)
        assert batch.memory_pool_bytes == 0

    def test_single_run_pools_local_tables(self, few_files_compressed):
        outcome = GTadoc(few_files_compressed).run(
            Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP
        )
        assert outcome.memory_pool_bytes > 0


class TestPlanRegistry:
    def test_every_task_has_a_plan(self):
        # Every task — the classic six plus relational — has a plan;
        # ``Task.all()`` names only the spec-free classic tasks.
        assert set(PLAN_REGISTRY) == set(Task)
        assert set(Task.all()) == set(Task) - {Task.RELATIONAL}

    def test_plan_for_accepts_strings(self):
        assert plan_for("word_count") is PLAN_REGISTRY[Task.WORD_COUNT]

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            plan_for("not_a_task")

    def test_corpus_plan_state_requirements(self):
        plan = plan_for(Task.WORD_COUNT)
        config = GTadocConfig()
        assert plan.required_state(TraversalStrategy.TOP_DOWN, config) == (RULE_WEIGHTS,)
        assert plan.required_state(TraversalStrategy.BOTTOM_UP, config) == (
            BOTTOMUP_BOUNDS,
            LOCAL_TABLES,
        )

    def test_file_plan_state_requirements(self):
        plan = plan_for(Task.TERM_VECTOR)
        config = GTadocConfig()
        assert plan.required_state(TraversalStrategy.TOP_DOWN, config) == (FILE_WEIGHTS,)

    def test_sequence_plan_fixed_strategy_and_state(self):
        plan = plan_for(Task.SEQUENCE_COUNT)
        assert plan.fixed_strategy is TraversalStrategy.TOP_DOWN
        config = GTadocConfig(sequence_length=4)
        assert sequence_buffers_key(4) in plan.required_state(TraversalStrategy.TOP_DOWN, config)
