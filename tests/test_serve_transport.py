"""Transport-abstracted shard workers: cross-transport equivalence,
crash isolation, corpus shipping, wire accounting and the lock-witness
recv tripwire.

The contract under test: promoting shards from in-process thread pools
to spawned worker processes changes *where* serving cores run, never
*what* they answer — every task, at every mutation epoch, is
bit-identical across ``inprocess``, ``process`` and the serial
baseline; a killed worker costs a replacement and a retry, never a
wrong answer.
"""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro.analytics.base import Task, results_equal
from repro.api.query import Query
from repro.compression.compressor import compress_corpus
from repro.data.corpus import Corpus
from repro.serve import (
    AnalyticsService,
    InProcessTransport,
    ProcessTransport,
    ServiceConfig,
    ShardedAnalyticsService,
    ShardedServiceConfig,
    ShardFailure,
    TraceConfig,
    create_transport,
    replay_trace_sharded,
    synthesize_trace,
)
from repro.serve.trace import MutationEvent, default_relational_specs


def _corpus(tag: str = "base") -> Corpus:
    text = (
        f"alpha beta gamma {tag} delta epsilon alpha beta zeta {tag} eta " * 4
    )
    return Corpus.from_texts(
        {f"{tag}_{index}.txt": text + f"theta iota {index}" for index in range(3)},
        name=tag,
    )


def _pool(transport: str, num_shards: int = 2, **config) -> ShardedAnalyticsService:
    defaults = dict(
        num_shards=num_shards,
        replication_factor=2,
        hot_query_share=0.6,
        min_queries_for_replication=4,
        shard_workers=2,
        transport=transport,
    )
    defaults.update(config)
    return ShardedAnalyticsService(
        sharded_config=ShardedServiceConfig(**defaults),
        service_config=ServiceConfig(coalesce_window=0.0),
    )


def _matrix_queries():
    """One query per task — the full compressed-domain task surface."""
    relational = default_relational_specs(keys=("alpha", "beta"))[1]
    return [
        Query(task=Task.WORD_COUNT, top_k=8),
        Query(task=Task.SORT, top_k=6),
        Query(task=Task.INVERTED_INDEX),
        Query(task=Task.TERM_VECTOR, terms=("alpha", "zeta")),
        Query(task=Task.SEQUENCE_COUNT, sequence_length=3, top_k=5),
        Query(task=Task.RANKED_INVERTED_INDEX, top_k=4),
        Query(task=Task.RELATIONAL, extras={"relational": relational}),
    ]


# ----------------------------------------------------------------------------------------
# Transport selection
# ----------------------------------------------------------------------------------------

class TestTransportSelection:
    def test_default_is_inprocess(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_TRANSPORT", raising=False)
        with _pool(transport=None) as service:
            assert service.transport_kind == "inprocess"
            assert isinstance(service._shards[0].transport, InProcessTransport)

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "process")
        with _pool(transport=None) as service:
            assert service.transport_kind == "process"
            assert isinstance(service._shards[0].transport, ProcessTransport)

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "process")
        with _pool(transport="inprocess") as service:
            assert service.transport_kind == "inprocess"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "carrier-pigeon")
        with pytest.raises(ValueError, match="REPRO_SHARD_TRANSPORT"):
            _pool(transport=None)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ShardedServiceConfig(transport="carrier-pigeon")

    def test_unknown_transport_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown shard transport"):
            create_transport(
                "smoke-signals",
                shard_id=0,
                name="x",
                engine_config=None,
                service_config=None,
                workers=1,
            )


# ----------------------------------------------------------------------------------------
# Cross-transport equivalence: every task x every mutation epoch
# ----------------------------------------------------------------------------------------

class TestEquivalenceMatrix:
    def test_every_task_every_epoch_bit_identical(self):
        """The full matrix: 7 tasks x 3 epochs x {inprocess, process,
        serial} — one shared live corpus, mutated between epochs."""
        compressed = compress_corpus(_corpus())
        epochs = [
            None,  # epoch 0: as compressed
            MutationEvent(
                kind="append", documents=(("live.txt", "alpha kappa beta kappa " * 6),)
            ),
            MutationEvent(
                kind="replace", documents=(("base_0.txt", "beta mu alpha mu nu " * 5),)
            ),
        ]
        with _pool("inprocess") as threads, _pool("process") as processes:
            for mutation in epochs:
                if mutation is not None:
                    mutation.apply(compressed)
                serial = AnalyticsService(
                    compressed, service_config=ServiceConfig(coalesce_window=0.0)
                )
                for query in _matrix_queries():
                    expected = serial.submit(query).result
                    got_threads = threads.submit(query, source=compressed).result
                    got_processes = processes.submit(query, source=compressed).result
                    assert results_equal(query.task, got_threads, expected)
                    assert results_equal(query.task, got_processes, expected)
                    assert got_processes == got_threads

    def test_batches_equivalent_across_transports(self):
        compressed = compress_corpus(_corpus("batch"))
        queries = _matrix_queries()
        with _pool("inprocess") as threads, _pool("process") as processes:
            served_threads = threads.run_batch(queries, source=compressed)
            served_processes = processes.run_batch(queries, source=compressed)
        for query, a, b in zip(queries, served_threads, served_processes):
            assert results_equal(query.task, a.result, b.result)
            assert a.backend == b.backend == "serve_sharded"


class TestProcessReplay:
    def test_mutating_trace_matches_serial_baseline(self):
        compressed = compress_corpus(_corpus("replay"))
        trace = synthesize_trace(
            compressed.file_names,
            TraceConfig(
                num_requests=28,
                seed=11,
                mutation_fraction=0.15,
                relational_fraction=0.2,
            ),
        )
        report = replay_trace_sharded(
            compressed, trace, num_shards=2, num_threads=4, transport="process"
        )
        assert report.transport == "process"
        assert report.mode == "threads+sharded"
        assert report.results_match is True
        assert report.stats.wire_messages > 0

    def test_async_process_replay_matches_serial_baseline(self):
        compressed = compress_corpus(_corpus("areplay"))
        trace = synthesize_trace(
            compressed.file_names,
            TraceConfig(num_requests=20, seed=5, mutation_fraction=0.1),
        )
        report = replay_trace_sharded(
            compressed,
            trace,
            num_shards=2,
            transport="process",
            use_async=True,
            concurrency=16,
        )
        assert report.transport == "process"
        assert report.mode == "asyncio+sharded"
        assert report.results_match is True


# ----------------------------------------------------------------------------------------
# Wire accounting
# ----------------------------------------------------------------------------------------

class TestWireAccounting:
    def test_inprocess_pool_has_zero_wire_traffic(self):
        compressed = compress_corpus(_corpus("wire0"))
        with _pool("inprocess") as service:
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            stats = service.stats()
        assert stats.wire_messages == 0.0
        assert stats.wire_bytes == 0.0
        assert stats.wire_seconds == 0.0
        # The modelled placement traffic is transport-independent.
        assert stats.network_messages == 2.0

    def test_process_pool_meters_and_prices_real_frames(self):
        compressed = compress_corpus(_corpus("wire1"))
        with _pool("process") as service:
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            stats = service.stats()
        # At least snapshot request/reply + submit request/reply.
        assert stats.wire_messages >= 4.0
        assert stats.wire_bytes > 0.0
        assert stats.wire_seconds > 0.0
        # Same modelled placement charge as every other transport.
        assert stats.network_messages == 2.0

    def test_wire_totals_survive_shard_replacement(self):
        compressed = compress_corpus(_corpus("wire2"))
        with _pool("process") as service:
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            before = service.stats().wire_bytes
            for shard in service._shards:
                shard.transport.kill()
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            after = service.stats()
        assert after.replaced_shards >= 1
        # Retired (dead-worker) traffic stays in the totals.
        assert after.wire_bytes > before


# ----------------------------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------------------------

class _DyingTransport(InProcessTransport):
    """Transport double: a worker that 'crashes' on the first N calls.

    Failing the returned future (rather than raising inline) reproduces
    exactly how a real dead pipe surfaces: in-flight work fails with
    ShardFailure after enqueue.
    """

    def __init__(self, inner_args, fail_times: int) -> None:
        super().__init__(*inner_args)
        self.failures_left = fail_times
        self.killed_calls = 0

    def _maybe_die(self):
        if self.failures_left > 0:
            self.failures_left -= 1
            self.killed_calls += 1
            failed: Future = Future()
            failed.set_exception(ShardFailure("injected worker crash"))
            return failed
        return None

    def submit(self, query, compressed, engine_config=None):
        return self._maybe_die() or super().submit(query, compressed, engine_config)

    def run_batch(self, queries, compressed, engine_config=None):
        return self._maybe_die() or super().run_batch(
            queries, compressed, engine_config
        )


def _inject_dying_owner(service, compressed, fail_times: int) -> _DyingTransport:
    """Swap the corpus-owning shard's transport for a crashing double."""
    owner = service._shards[service.shard_for(compressed)]
    dying = _DyingTransport(
        (owner.shard_id, service.name, None, ServiceConfig(coalesce_window=0.0), 2),
        fail_times,
    )
    owner.transport.close()
    owner.transport = dying
    return dying


class TestCrashIsolation:
    def test_submit_fails_over_and_answers_identically(self):
        compressed = compress_corpus(_corpus("crash1"))
        query = Query(task=Task.WORD_COUNT, top_k=8)
        expected = AnalyticsService(compressed).submit(query).result
        with _pool("inprocess") as service:
            dying = _inject_dying_owner(service, compressed, fail_times=1)
            outcome = service.submit(query, source=compressed)
            assert outcome.result == expected
            assert dying.killed_calls == 1
            stats = service.stats()
        assert stats.shard_failures == 1
        assert stats.replaced_shards == 1
        # A crash is not a rebalance: moved_sessions is untouched.
        assert stats.moved_sessions == 0

    def test_batch_mid_kill_returns_every_answer(self):
        compressed = compress_corpus(_corpus("crash2"))
        queries = _matrix_queries()
        serial = AnalyticsService(compressed)
        expected = [serial.submit(query).result for query in queries]
        with _pool("inprocess") as service:
            _inject_dying_owner(service, compressed, fail_times=1)
            served = service.run_batch(queries, source=compressed)
            stats = service.stats()
        for query, outcome, want in zip(queries, served, expected):
            assert results_equal(query.task, outcome.result, want)
        assert stats.shard_failures == 1

    def test_double_kill_mid_batch_still_zero_wrong_answers(self):
        """The double kills the worker, and then kills the *replacement*'s
        first serve too: the batch path retries through submit's own
        failover loop until a live owner answers."""
        compressed = compress_corpus(_corpus("crash3"))
        queries = _matrix_queries()
        serial = AnalyticsService(compressed)
        expected = [serial.submit(query).result for query in queries]
        with _pool("inprocess") as service:
            original_new_shard = service._new_shard
            doubles = []

            def dying_new_shard(shard_id):
                shard = original_new_shard(shard_id)
                if len(doubles) < 1:  # first replacement also crashes once
                    shard.transport.close()
                    shard.transport = _DyingTransport(
                        (shard_id, service.name, None,
                         ServiceConfig(coalesce_window=0.0), 2),
                        1,
                    )
                    doubles.append(shard.transport)
                return shard

            service._new_shard = dying_new_shard
            _inject_dying_owner(service, compressed, fail_times=1)
            served = service.run_batch(queries, source=compressed)
            stats = service.stats()
        for query, outcome, want in zip(queries, served, expected):
            assert results_equal(query.task, outcome.result, want)
        assert stats.shard_failures >= 2
        assert stats.replaced_shards >= 2
        assert stats.moved_sessions == 0

    def test_corpus_reroutes_to_live_owner_after_failure(self):
        compressed = compress_corpus(_corpus("crash4"))
        with _pool("inprocess") as service:
            before_ids = [shard.shard_id for shard in service._shards]
            _inject_dying_owner(service, compressed, fail_times=1)
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            after_ids = [shard.shard_id for shard in service._shards]
            owner = service._shards[service.shard_for(compressed)]
            assert owner.transport.alive
        # The replacement took a fresh id: rankings re-ran HRW.
        assert after_ids != before_ids
        assert max(after_ids) > max(before_ids)

    def test_exhausted_failover_raises_shard_failure(self):
        compressed = compress_corpus(_corpus("crash5"))
        with _pool("inprocess", num_shards=1, replication_factor=1) as service:
            original_new_shard = service._new_shard

            def always_dying(shard_id):
                shard = original_new_shard(shard_id)
                shard.transport.close()
                shard.transport = _DyingTransport(
                    (shard_id, service.name, None,
                     ServiceConfig(coalesce_window=0.0), 2),
                    10_000,
                )
                return shard

            service._new_shard = always_dying
            _inject_dying_owner(service, compressed, fail_times=10_000)
            with pytest.raises(ShardFailure):
                service.submit(Query(task=Task.WORD_COUNT), source=compressed)

    def test_real_worker_kill_recovers_with_identical_results(self):
        compressed = compress_corpus(_corpus("crash6"))
        query = Query(task=Task.SORT, top_k=6)
        expected = AnalyticsService(compressed).submit(query).result
        with _pool("process") as service:
            first = service.submit(query, source=compressed)
            assert first.result == expected
            for shard in service._shards:
                shard.transport.kill()
            second = service.submit(query, source=compressed)
            stats = service.stats()
        assert second.result == expected
        assert stats.shard_failures >= 1
        assert stats.replaced_shards == stats.shard_failures
        assert stats.moved_sessions == 0


# ----------------------------------------------------------------------------------------
# Worker-side errors and the witness tripwire
# ----------------------------------------------------------------------------------------

class TestProcessTransportProtocol:
    def test_worker_errors_cross_the_wire_as_exceptions(self):
        compressed = compress_corpus(_corpus("err"))
        with _pool("process") as service:
            # The file filter is validated *inside* the serving core —
            # worker-side for a process shard — and the error type must
            # survive the wire as the same ValueError, not ShardFailure.
            with pytest.raises(ValueError, match="unknown file"):
                service.submit(
                    Query(task=Task.WORD_COUNT, files=("no_such.txt",)),
                    source=compressed,
                )
            # The worker survives the rejected query.
            outcome = service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            assert outcome.result
            assert service.stats().shard_failures == 0

    def test_recv_tripwire_fires_under_witness_when_lock_held(self):
        from repro.analysis import lockcheck
        from repro.analysis.lockcheck import make_lock

        transport = create_transport(
            "process",
            shard_id=990,
            name="tripwire",
            engine_config=None,
            service_config=ServiceConfig(coalesce_window=0.0),
            workers=1,
        )
        was_enabled = lockcheck.is_enabled()
        lockcheck.enable()
        try:
            # A router-level lock (below the transport's own rank, so the
            # wire counters can still be taken legally) held across the
            # round trip must trip the recv guard.
            probe = make_lock("serve.router")
            with probe:
                with pytest.raises(RuntimeError, match="recv with locks held"):
                    transport._roundtrip(("ping", None))
        finally:
            if not was_enabled:
                lockcheck.disable()
            lockcheck.reset_witness()
            transport.kill()
            transport.close()

    def test_recv_runs_lock_free_under_witness(self):
        from repro.analysis import lockcheck

        compressed = compress_corpus(_corpus("witness"))
        was_enabled = lockcheck.is_enabled()
        lockcheck.enable()
        try:
            with _pool("process") as service:
                outcome = service.submit(
                    Query(task=Task.WORD_COUNT), source=compressed
                )
                assert outcome.result
        finally:
            if not was_enabled:
                lockcheck.disable()
            lockcheck.reset_witness()
