"""Tests for the GPU execution-model simulator (device, context, atomics)."""

from __future__ import annotations

import pytest

import numpy as np

from repro.gpusim.context import ThreadContext
from repro.gpusim.device import DEFAULT_HISTORY_LIMIT, GPUDevice
from repro.perf.counters import GpuRunRecord
from repro.perf.specs import GTX_1080


class TestThreadContext:
    def test_charge_accumulates(self):
        ctx = ThreadContext(0, {})
        ctx.charge(ops=2.0, memory_bytes=8.0)
        ctx.charge(ops=3.0, shared_bytes=4.0)
        assert ctx.ops == 5.0
        assert ctx.memory_bytes == 8.0
        assert ctx.shared_bytes == 4.0

    def test_atomic_add_updates_and_returns_old(self):
        tracker = {}
        ctx = ThreadContext(0, tracker)
        values = [10, 20]
        old = ctx.atomic_add(values, 1, 5)
        assert old == 20
        assert values[1] == 25
        assert ctx.atomic_ops == 1.0

    def test_atomic_conflict_tracking(self):
        tracker = {}
        values = [0]
        for tid in range(4):
            ThreadContext(tid, tracker).atomic_add(values, 0, 1)
        assert values[0] == 4
        assert list(tracker.values()) == [4]

    def test_atomic_max(self):
        ctx = ThreadContext(0, {})
        values = [5]
        ctx.atomic_max(values, 0, 3)
        assert values[0] == 5
        ctx.atomic_max(values, 0, 9)
        assert values[0] == 9

    def test_atomic_cas(self):
        ctx = ThreadContext(0, {})
        values = [0]
        swapped, old = ctx.atomic_cas(values, 0, 0, 1)
        assert swapped and old == 0 and values[0] == 1
        swapped, old = ctx.atomic_cas(values, 0, 0, 2)
        assert not swapped and old == 1 and values[0] == 1


class TestKernelLaunch:
    def test_launch_requires_threads(self):
        device = GPUDevice()
        with pytest.raises(ValueError):
            device.launch("noop", lambda tid, ctx: None, 0)

    def test_every_thread_executes(self):
        device = GPUDevice()
        seen = []
        device.launch("collect", lambda tid, ctx: seen.append(tid), 70)
        assert seen == list(range(70))

    def test_warp_count(self):
        device = GPUDevice()
        launch = device.launch("noop", lambda tid, ctx: None, 70)
        assert launch.stats.num_warps == 3
        assert launch.stats.num_threads == 70

    def test_warp_serial_ops_is_max_per_warp(self):
        device = GPUDevice()

        def kernel(tid, ctx):
            # One heavy thread per warp dominates its warp cost.
            ctx.charge(ops=100.0 if tid % 32 == 0 else 1.0)

        launch = device.launch("divergent", kernel, 64)
        assert launch.stats.warp_serial_ops == 200.0
        assert launch.stats.total_thread_ops == 100.0 * 2 + 62.0

    def test_divergence_ratio_greater_for_imbalanced_warps(self):
        device = GPUDevice()

        def balanced(tid, ctx):
            ctx.charge(ops=10.0)

        def imbalanced(tid, ctx):
            ctx.charge(ops=100.0 if tid == 0 else 1.0)

        balanced_stats = device.launch("balanced", balanced, 32).stats
        imbalanced_stats = device.launch("imbalanced", imbalanced, 32).stats
        assert balanced_stats.divergence_ratio == pytest.approx(1.0)
        assert imbalanced_stats.divergence_ratio > 10.0

    def test_partial_last_warp_counted(self):
        device = GPUDevice()
        launch = device.launch("partial", lambda tid, ctx: ctx.charge(ops=1.0), 33)
        assert launch.stats.warp_serial_ops == 2.0

    def test_atomic_conflicts_recorded_per_launch(self):
        device = GPUDevice()
        values = [0]

        def kernel(tid, ctx):
            ctx.atomic_add(values, 0, 1)

        launch = device.launch("atomics", kernel, 16)
        assert launch.stats.atomic_ops == 16.0
        assert launch.stats.atomic_conflicts == 15.0

    def test_memory_bytes_per_thread_charged(self):
        device = GPUDevice()
        launch = device.launch("loads", lambda tid, ctx: None, 10, memory_bytes_per_thread=8.0)
        assert launch.stats.memory_bytes == 80.0

    def test_record_accumulates_launches(self):
        record = GpuRunRecord()
        device = GPUDevice(record=record)
        device.launch("k1", lambda tid, ctx: None, 8)
        device.launch("k2", lambda tid, ctx: None, 8)
        assert record.num_launches == 2
        assert [kernel.name for kernel in record.kernels] == ["k1", "k2"]

    def test_set_record_switches_phase(self):
        first = GpuRunRecord()
        second = GpuRunRecord()
        device = GPUDevice(record=first)
        device.launch("init", lambda tid, ctx: None, 4)
        device.set_record(second)
        device.launch("traversal", lambda tid, ctx: None, 4)
        assert first.num_launches == 1
        assert second.num_launches == 1

    def test_pcie_transfers_charged_to_record(self):
        device = GPUDevice()
        device.transfer_to_device(1000)
        device.transfer_to_host(500)
        assert device.record.pcie_bytes == 1500

    def test_warp_size_follows_spec(self):
        device = GPUDevice(spec=GTX_1080)
        assert device.warp_size == 32


class TestLaunchHistory:
    def test_history_bounded_by_default(self):
        device = GPUDevice()
        for i in range(DEFAULT_HISTORY_LIMIT + 10):
            device.launch(f"k{i}", lambda tid, ctx: None, 1)
        assert len(device.launch_history) == DEFAULT_HISTORY_LIMIT
        # The bound is a ring buffer: only the most recent launches survive.
        names = [launch.stats.name for launch in device.launch_history]
        assert names[0] == "k10"
        assert names[-1] == f"k{DEFAULT_HISTORY_LIMIT + 9}"
        # The record still counts every launch — only the history is bounded.
        assert device.record.num_launches == DEFAULT_HISTORY_LIMIT + 10

    def test_history_unbounded_when_limit_is_none(self):
        device = GPUDevice(history_limit=None)
        for i in range(DEFAULT_HISTORY_LIMIT + 10):
            device.launch(f"k{i}", lambda tid, ctx: None, 1)
        assert len(device.launch_history) == DEFAULT_HISTORY_LIMIT + 10

    def test_bulk_launches_share_the_bound(self):
        device = GPUDevice(history_limit=4)
        for i in range(6):
            device.launch_bulk(f"bulk{i}", 2, thread_ops=np.ones(2))
        names = [launch.stats.name for launch in device.launch_history]
        assert names == ["bulk2", "bulk3", "bulk4", "bulk5"]
