"""Tests for the baseline engines (CPU TADOC, parallel, distributed, GPU uncompressed)."""

from __future__ import annotations

import pytest

from repro.analytics.base import Task, results_equal
from repro.baselines.cpu_tadoc import CpuTadoc
from repro.baselines.distributed import DistributedTadoc
from repro.baselines.gpu_uncompressed import GpuUncompressedAnalytics
from repro.baselines.merge import merge_partial_results, result_entry_count
from repro.baselines.parallel_tadoc import ParallelCpuTadoc
from repro.baselines.partitioning import partition_corpus
from repro.cluster.simulator import ClusterSimulator, ClusterSpec
from repro.perf.counters import CostCounter


@pytest.fixture(scope="module")
def cpu_engine(few_files_compressed) -> CpuTadoc:
    return CpuTadoc(few_files_compressed)


class TestCpuTadoc:
    @pytest.mark.parametrize("task", Task.all())
    def test_results_match_reference(self, cpu_engine, few_files_reference, task):
        run = cpu_engine.run(task)
        assert results_equal(task, run.result, few_files_reference.run(task))

    @pytest.mark.parametrize("task", Task.all())
    def test_many_files_results(self, many_files_compressed, many_files_reference, task):
        run = CpuTadoc(many_files_compressed).run(task)
        assert results_equal(task, run.result, many_files_reference.run(task))

    def test_phase_counters_populated(self, cpu_engine):
        run = cpu_engine.run(Task.WORD_COUNT)
        assert run.init_counter.total_ops > 0
        assert run.traversal_counter.total_ops > 0

    def test_sequence_tasks_cost_more_than_word_count(self, cpu_engine):
        """The paper: sequence-sensitive tasks behave like uncompressed scans."""
        word_count = cpu_engine.run(Task.WORD_COUNT).traversal_counter
        sequence = cpu_engine.run(Task.SEQUENCE_COUNT).traversal_counter
        ranked = cpu_engine.run(Task.RANKED_INVERTED_INDEX).traversal_counter
        assert sequence.total_ops > word_count.total_ops
        assert ranked.total_ops > word_count.total_ops

    def test_init_counter_independent_of_task(self, cpu_engine):
        first = cpu_engine.run(Task.WORD_COUNT).init_counter
        second = cpu_engine.run(Task.TERM_VECTOR).init_counter
        assert first.total_ops == second.total_ops

    def test_string_task_accepted(self, cpu_engine, few_files_reference):
        run = cpu_engine.run("sort")
        assert results_equal(Task.SORT, run.result, few_files_reference.run(Task.SORT))

    def test_run_all(self, tiny_compressed, tiny_reference):
        runs = CpuTadoc(tiny_compressed).run_all()
        assert set(runs) == set(Task.all())
        for task, run in runs.items():
            assert results_equal(task, run.result, tiny_reference.run(task))


class TestPartitioning:
    def test_partitions_cover_all_files(self, many_files_corpus):
        partitions = partition_corpus(many_files_corpus, 4)
        names = [name for partition in partitions for name in partition.file_names]
        assert sorted(names) == sorted(many_files_corpus.file_names)

    def test_no_more_partitions_than_files(self, tiny_corpus):
        partitions = partition_corpus(tiny_corpus, 10)
        assert len(partitions) == 3

    def test_balanced_by_tokens(self, many_files_corpus):
        partitions = partition_corpus(many_files_corpus, 4)
        loads = [partition.num_tokens for partition in partitions]
        assert max(loads) <= 2 * min(loads) + max(
            doc.num_tokens for doc in many_files_corpus
        )

    def test_invalid_partition_count(self, tiny_corpus):
        with pytest.raises(ValueError):
            partition_corpus(tiny_corpus, 0)


class TestMerge:
    def test_word_count_merge_adds(self):
        counter = CostCounter()
        merged = merge_partial_results(
            Task.WORD_COUNT, [{"a": 1, "b": 2}, {"a": 3}], counter
        )
        assert merged == {"a": 4, "b": 2}
        assert counter.hash_ops > 0

    def test_term_vector_merge_concatenates_files(self):
        merged = merge_partial_results(
            Task.TERM_VECTOR,
            [{"x.txt": {"a": 1}}, {"y.txt": {"b": 2}}],
            CostCounter(),
        )
        assert merged == {"x.txt": {"a": 1}, "y.txt": {"b": 2}}

    def test_inverted_index_merge_unions(self):
        merged = merge_partial_results(
            Task.INVERTED_INDEX,
            [{"w": ["b.txt"]}, {"w": ["a.txt"]}],
            CostCounter(),
        )
        assert merged == {"w": ["a.txt", "b.txt"]}

    def test_ranked_merge_reranks(self):
        merged = merge_partial_results(
            Task.RANKED_INVERTED_INDEX,
            [{"w": [("a.txt", 1)]}, {"w": [("b.txt", 5)]}],
            CostCounter(),
        )
        assert merged == {"w": [("b.txt", 5), ("a.txt", 1)]}

    def test_sequence_merge_adds(self):
        merged = merge_partial_results(
            Task.SEQUENCE_COUNT,
            [{("a", "b", "c"): 1}, {("a", "b", "c"): 2}],
            CostCounter(),
        )
        assert merged == {("a", "b", "c"): 3}

    def test_result_entry_count_shapes(self):
        assert result_entry_count(Task.WORD_COUNT, {"a": 1, "b": 1}) == 2
        assert result_entry_count(Task.SORT, [("a", 1)]) == 1
        assert result_entry_count(Task.TERM_VECTOR, {"f": {"a": 1, "b": 1}}) == 2
        assert result_entry_count(Task.RANKED_INVERTED_INDEX, {"w": [("f", 1)]}) == 1


class TestParallelTadoc:
    @pytest.mark.parametrize("task", Task.all())
    def test_results_match_reference(self, many_files_corpus, many_files_reference, task):
        engine = ParallelCpuTadoc(many_files_corpus, num_threads=4)
        run = engine.run(task)
        assert results_equal(task, run.result, many_files_reference.run(task))

    def test_partition_counters_reported(self, many_files_corpus):
        engine = ParallelCpuTadoc(many_files_corpus, num_threads=4)
        run = engine.run(Task.WORD_COUNT)
        assert run.num_partitions >= 2
        assert all(counter.total_ops > 0 for counter in run.partition_total_counters())

    def test_invalid_thread_count(self, many_files_corpus):
        with pytest.raises(ValueError):
            ParallelCpuTadoc(many_files_corpus, num_threads=0)


class TestDistributedTadoc:
    @pytest.mark.parametrize("task", [Task.WORD_COUNT, Task.TERM_VECTOR, Task.SEQUENCE_COUNT])
    def test_results_match_reference(self, many_files_corpus, many_files_reference, task):
        engine = DistributedTadoc(many_files_corpus, cluster=ClusterSpec(num_nodes=4))
        run = engine.run(task)
        assert results_equal(task, run.result, many_files_reference.run(task))

    def test_node_executions_cover_cluster(self, many_files_corpus):
        engine = DistributedTadoc(many_files_corpus, cluster=ClusterSpec(num_nodes=4))
        run = engine.run(Task.WORD_COUNT)
        assert len(run.node_traversal_executions) == 4
        assert run.shuffle_counter.network_bytes > 0

    def test_per_node_totals_combine_phases(self, many_files_corpus):
        engine = DistributedTadoc(many_files_corpus, cluster=ClusterSpec(num_nodes=2))
        run = engine.run(Task.WORD_COUNT)
        totals = run.per_node_counters()
        init = run.per_node_init_counters()
        traversal = run.per_node_traversal_counters()
        for combined, init_counter, traversal_counter in zip(totals, init, traversal):
            assert combined.total_ops == pytest.approx(
                init_counter.total_ops + traversal_counter.total_ops
            )


class TestClusterSimulator:
    def test_round_robin_assignment(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=3))
        assignment = simulator.assign_partitions(7)
        assert assignment[0] == [0, 3, 6]
        assert assignment[1] == [1, 4]
        assert assignment[2] == [2, 5]

    def test_execute_accumulates_work_and_network(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=2))
        counters = [CostCounter(compute_ops=10), CostCounter(compute_ops=20), CostCounter(compute_ops=30)]
        executions = simulator.execute(counters, [5, 5, 5])
        assert executions[0].counter.compute_ops == 40  # partitions 0 and 2
        assert executions[1].counter.compute_ops == 20
        assert executions[0].counter.network_messages == 2

    def test_mismatched_inputs_rejected(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=2))
        with pytest.raises(ValueError):
            simulator.execute([CostCounter()], [1, 2])

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            ClusterSimulator(ClusterSpec(num_nodes=0))


class TestGpuUncompressed:
    @pytest.mark.parametrize("task", Task.all())
    def test_results_match_reference(self, few_files_corpus, few_files_reference, task):
        run = GpuUncompressedAnalytics(few_files_corpus).run(task)
        assert results_equal(task, run.result, few_files_reference.run(task))

    def test_record_scales_with_tokens(self, few_files_corpus, tiny_corpus):
        large = GpuUncompressedAnalytics(few_files_corpus).run(Task.WORD_COUNT).record
        small = GpuUncompressedAnalytics(tiny_corpus).run(Task.WORD_COUNT).record
        assert large.total_warp_serial_ops > small.total_warp_serial_ops

    def test_pcie_charged_when_requested(self, tiny_corpus):
        run = GpuUncompressedAnalytics(tiny_corpus, needs_pcie_transfer=True).run(Task.SORT)
        assert run.record.pcie_bytes > 0

    def test_sequence_kernel_used_for_sequence_count(self, tiny_corpus):
        run = GpuUncompressedAnalytics(tiny_corpus).run(Task.SEQUENCE_COUNT)
        assert any(kernel.name == "sequenceCountKernel" for kernel in run.record.kernels)
