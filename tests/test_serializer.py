"""Tests for the compressed-corpus on-disk format."""

from __future__ import annotations

import json

import pytest

from repro.compression.serializer import load_compressed, save_compressed, to_flat_numbering


class TestSaveLoad:
    def test_roundtrip_preserves_grammar(self, tiny_compressed, tmp_path):
        path = save_compressed(tiny_compressed, tmp_path / "tiny.json")
        loaded = load_compressed(path)
        assert loaded.grammar == tiny_compressed.grammar
        assert loaded.dictionary == tiny_compressed.dictionary
        assert loaded.file_names == tiny_compressed.file_names
        assert loaded.splitter_ids == tiny_compressed.splitter_ids

    def test_roundtrip_preserves_decompression(self, tiny_corpus, tiny_compressed, tmp_path):
        path = save_compressed(tiny_compressed, tmp_path / "tiny.json")
        assert load_compressed(path).decompress() == tiny_corpus

    def test_roundtrip_single_file(self, single_file_compressed, tmp_path):
        path = save_compressed(single_file_compressed, tmp_path / "single.json")
        loaded = load_compressed(path)
        assert loaded.statistics().num_files == 1

    def test_parent_directories_created(self, tiny_compressed, tmp_path):
        path = save_compressed(tiny_compressed, tmp_path / "nested" / "dir" / "data.json")
        assert path.exists()

    def test_unsupported_version_rejected(self, tiny_compressed, tmp_path):
        path = save_compressed(tiny_compressed, tmp_path / "tiny.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_compressed(path)

    def test_original_sizes_preserved(self, tiny_compressed, tmp_path):
        path = save_compressed(tiny_compressed, tmp_path / "tiny.json")
        loaded = load_compressed(path)
        assert loaded.original_tokens == tiny_compressed.original_tokens
        assert loaded.original_size_bytes == tiny_compressed.original_size_bytes


class TestFlatNumbering:
    def test_rule_ids_offset_by_symbol_count(self, tiny_compressed):
        flat = to_flat_numbering(tiny_compressed)
        offset = tiny_compressed.dictionary.num_symbols
        assert flat["rule_id_offset"] == offset
        for body in flat["rules"]:
            for symbol in body:
                assert symbol >= 0

    def test_flat_rule_count_matches(self, tiny_compressed):
        flat = to_flat_numbering(tiny_compressed)
        assert len(flat["rules"]) == len(tiny_compressed.grammar)

    def test_flat_bodies_have_same_lengths(self, tiny_compressed):
        flat = to_flat_numbering(tiny_compressed)
        for body, rule in zip(flat["rules"], tiny_compressed.grammar):
            assert len(body) == len(rule)
