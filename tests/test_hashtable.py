"""Tests for the thread-safe device hash table (paper Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.context import ThreadContext
from repro.gpusim.hashtable import DeviceHashTable


class TestInsertAdd:
    def test_insert_and_lookup(self):
        table = DeviceHashTable(num_buckets=8, capacity=16)
        table.insert_add(126, 1)
        assert table.lookup(126) == 1

    def test_missing_key_lookup(self):
        table = DeviceHashTable(num_buckets=8, capacity=16)
        assert table.lookup(99) is None

    def test_existing_key_accumulates(self):
        table = DeviceHashTable(num_buckets=8, capacity=16)
        table.insert_add(5, 2)
        table.insert_add(5, 3)
        assert table.lookup(5) == 5
        assert len(table) == 1

    def test_chaining_on_bucket_collision(self):
        # One bucket forces every key into the same chain (Figure 5(d)).
        table = DeviceHashTable(num_buckets=1, capacity=8)
        for key in (126, 163, 78):
            table.insert_add(key, 1)
        assert table.to_dict() == {126: 1, 163: 1, 78: 1}
        assert len(table) == 3

    def test_capacity_exhaustion(self):
        table = DeviceHashTable(num_buckets=4, capacity=2)
        table.insert_add(1, 1)
        table.insert_add(2, 1)
        with pytest.raises(MemoryError):
            table.insert_add(3, 1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            DeviceHashTable(num_buckets=0, capacity=4)
        with pytest.raises(ValueError):
            DeviceHashTable(num_buckets=4, capacity=0)

    def test_items_iterates_all_pairs(self):
        table = DeviceHashTable.sized_for(10)
        for key in range(10):
            table.insert_add(key, key * 2)
        assert dict(table.items()) == {key: key * 2 for key in range(10)}

    def test_sized_for_has_headroom(self):
        table = DeviceHashTable.sized_for(100)
        for key in range(100):
            table.insert_add(key, 1)
        assert len(table) == 100

    def test_private_table_without_locks(self):
        table = DeviceHashTable(num_buckets=4, capacity=8, use_locks=False)
        table.insert_add(1, 1)
        table.insert_add(1, 1)
        assert table.lookup(1) == 2
        assert int(table.locks.sum()) == 0


class TestWorkAccounting:
    def test_context_charged_for_probes_and_atomics(self):
        table = DeviceHashTable(num_buckets=4, capacity=8)
        ctx = ThreadContext(0, {})
        table.insert_add(7, 1, ctx)
        assert ctx.ops > 0
        assert ctx.atomic_ops >= 1  # the lock CAS

    def test_update_of_existing_key_uses_atomic_add(self):
        table = DeviceHashTable(num_buckets=4, capacity=8)
        table.insert_add(7, 1)
        ctx = ThreadContext(1, {})
        table.insert_add(7, 1, ctx)
        assert ctx.atomic_ops >= 1
        assert table.lookup(7) == 2

    def test_locks_released_after_insert(self):
        table = DeviceHashTable(num_buckets=2, capacity=8)
        for key in range(6):
            table.insert_add(key, 1, ThreadContext(key, {}))
        assert int(table.locks.sum()) == 0


class TestAgainstDictModel:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=9)),
            max_size=200,
        )
    )
    def test_matches_python_dict(self, operations):
        table = DeviceHashTable.sized_for(80)
        model = {}
        for key, value in operations:
            table.insert_add(key, value)
            model[key] = model.get(key, 0) + value
        assert table.to_dict() == model

    @settings(max_examples=20, deadline=None)
    @given(st.permutations(list(range(30))))
    def test_insertion_order_irrelevant(self, keys):
        table = DeviceHashTable.sized_for(40)
        for key in keys:
            table.insert_add(key, key + 1)
        assert table.to_dict() == {key: key + 1 for key in range(30)}
