"""Mutable-corpora fuzz: incremental maintenance is bit-identical to scratch.

The contract under test is the tentpole invariant of the live-corpora
work: after ANY sequence of mutations (appends, replaces, removals)
applied through :class:`~repro.compression.compressor.CompressedCorpus`'s
incremental API, the corpus — grammar, dictionary, fingerprint — and
every engine's answers are bit-identical to compressing the mutated
token streams from scratch.  The suite fuzzes randomized mutation
sequences at the compression layer, drives the nine-backend equivalence
matrix across mutation epochs, exercises the session delta path
directly, replays mutating traces through all three serving tiers, and
mutates under in-flight sharded traffic to pin down the lazy (no
synchronous fan-out) invalidation contract.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.analytics.base import Task, results_equal
from repro.api import Query, open_backend
from repro.compression.compressor import CompressedCorpus, TadocCompressor
from repro.core.engine import GTadoc
from repro.data.corpus import Corpus
from repro.relational.spec import FieldSpec, RelationalQuery, RowSchema
from repro.serve.replay import replay_trace, replay_trace_async, replay_trace_sharded
from repro.serve.sharding import ShardedAnalyticsService, ShardedServiceConfig
from repro.serve.trace import MutationEvent, TraceConfig, synthesize_trace

#: The full equivalence matrix: every engine plus all three serving tiers.
LIVE_BACKENDS = ("gtadoc", "serve", "serve_async", "serve_sharded")
SNAPSHOT_BACKENDS = ("cpu", "parallel", "distributed", "gpu_uncompressed", "reference")

_BACKEND_OPTIONS = {
    "parallel": {"num_threads": 2},
    "serve_sharded": {"num_shards": 2},
}

_VOCAB = [f"w{i}" for i in range(20)]


def _random_tokens(rng: random.Random, vocab, low=40, high=90):
    return [rng.choice(vocab) for _ in range(rng.randint(low, high))]


def _seed_streams(rng: random.Random, files: int = 3):
    return {f"doc{i}": _random_tokens(rng, _VOCAB) for i in range(files)}


def _scratch(streams) -> CompressedCorpus:
    """Compress the token streams from scratch — the ground truth."""
    return TadocCompressor().compress(
        Corpus.from_token_streams({name: list(tokens) for name, tokens in streams.items()})
    )


def _random_mutation(rng: random.Random, live: CompressedCorpus, streams, step: int) -> str:
    """One random mutation, applied to the live corpus AND the shadow streams.

    Fresh-vocabulary appends model live ingest (the structurally stable
    case the session delta path accelerates); shared-vocabulary appends
    and replaces restructure existing rules and force the rebuild
    fallback — both must stay bit-identical.
    """
    roll = rng.random()
    if roll < 0.3:
        name = f"fresh{step}"
        tokens = _random_tokens(rng, [f"s{step}x{j}" for j in range(5)], 10, 30)
        live.append_files({name: tokens})
        streams[name] = tokens
        return "append-fresh"
    if roll < 0.6:
        name = f"shared{step}"
        tokens = _random_tokens(rng, _VOCAB, 10, 30)
        live.append_files({name: tokens})
        streams[name] = tokens
        return "append-shared"
    if roll < 0.85 or len(streams) <= 2:
        name = rng.choice(sorted(streams))
        tokens = _random_tokens(rng, _VOCAB, 10, 30)
        live.replace_file(name, tokens)
        streams[name] = tokens
        return "replace"
    name = rng.choice(sorted(streams))
    live.remove_file(name)
    del streams[name]
    return "remove"


# ----------------------------------------------------------------------------------------
# Compression layer: grammar/fingerprint identity under randomized sequences
# ----------------------------------------------------------------------------------------

class TestCompressionFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_mutation_sequence_matches_scratch(self, seed):
        rng = random.Random(seed)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        kinds = []
        for step in range(5):
            kinds.append(_random_mutation(rng, live, streams, step))
            scratch = _scratch(streams)
            assert live.fingerprint() == scratch.fingerprint(), kinds
            assert [rule.symbols for rule in live.grammar] == [
                rule.symbols for rule in scratch.grammar
            ], kinds
            assert live.dictionary.to_dict() == scratch.dictionary.to_dict(), kinds
            assert live.version == step + 1
        # Lossless after the whole sequence: expansion returns the streams.
        expanded = {
            name: live.expand_file_tokens(index)
            for index, name in enumerate(live.file_names)
        }
        assert expanded == streams

    def test_uid_stable_fingerprint_advances(self):
        rng = random.Random(99)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        uid = live.uid
        first = live.fingerprint()
        live.append_files({"extra": _random_tokens(rng, _VOCAB, 10, 20)})
        assert live.uid == uid
        assert live.fingerprint() != first
        assert live.mutations_since(0) == ["append"]


# ----------------------------------------------------------------------------------------
# Session layer: the delta path engages on fresh-vocabulary appends
# ----------------------------------------------------------------------------------------

_OLD_WORD_SPEC = RelationalQuery(
    schema=RowSchema(fields=(FieldSpec("a", key="w1"), FieldSpec("b", key="w2"))),
    group_by="a",
)


def _engine_result(engine: GTadoc, task: Task, relational=None):
    return engine.run(task, relational=relational).result


class TestSessionDelta:
    def test_fresh_append_takes_delta_path_and_matches_scratch(self):
        rng = random.Random(5)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        engine = GTadoc(live)
        # Warm every task family's cached state on the persistent session
        # (run_batch shares it; run() clones a state-free session).
        engine.run_batch()
        engine.run_batch([Task.RELATIONAL], relational=_OLD_WORD_SPEC)

        tokens = _random_tokens(rng, ["liveA", "liveB", "liveC"], 15, 30)
        live.append_files({"ingest": tokens})
        streams["ingest"] = tokens
        assert engine.session.sync_with_corpus() == "delta"

        reference = open_backend("reference", _scratch(streams))
        for task in Task.all():
            expected = reference.run(Query(task=task)).result
            assert results_equal(task, _engine_result(engine, task), expected), task
        expected = reference.run(
            Query(task=Task.RELATIONAL, extras={"relational": _OLD_WORD_SPEC})
        ).result
        assert results_equal(
            Task.RELATIONAL,
            _engine_result(engine, Task.RELATIONAL, relational=_OLD_WORD_SPEC),
            expected,
        )

    def test_replace_falls_back_to_rebuild_and_matches_scratch(self):
        rng = random.Random(6)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        engine = GTadoc(live)
        engine.run_batch([Task.WORD_COUNT])

        tokens = _random_tokens(rng, _VOCAB, 10, 25)
        live.replace_file("doc0", tokens)
        streams["doc0"] = tokens
        assert engine.session.sync_with_corpus() == "rebuild"

        reference = open_backend("reference", _scratch(streams))
        assert results_equal(
            Task.WORD_COUNT,
            _engine_result(engine, Task.WORD_COUNT),
            reference.run(Query(task=Task.WORD_COUNT)).result,
        )

    def test_relational_anchor_on_new_vocabulary(self):
        """A schema keyed on post-append words still answers correctly.

        The delta path cannot extend relational tables whose anchors are
        new dictionary words (their ids did not exist in the old epoch),
        so those cached tables are dropped and rebuilt lazily — the
        answer must come out identical either way.
        """
        rng = random.Random(7)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        engine = GTadoc(live)
        engine.run_batch([Task.WORD_COUNT])

        tokens = ["k1", "alpha", "k2", "beta"] * 6
        live.append_files({"rows": tokens})
        streams["rows"] = tokens
        spec = RelationalQuery(
            schema=RowSchema(fields=(FieldSpec("a", key="k1"), FieldSpec("b", key="k2"))),
            group_by="a",
        )
        reference = open_backend("reference", _scratch(streams))
        assert results_equal(
            Task.RELATIONAL,
            _engine_result(engine, Task.RELATIONAL, relational=spec),
            reference.run(Query(task=Task.RELATIONAL, extras={"relational": spec})).result,
        )


# ----------------------------------------------------------------------------------------
# Nine-backend matrix across mutation epochs
# ----------------------------------------------------------------------------------------

class TestBackendMatrixAcrossEpochs:
    def test_all_backends_bit_identical_after_each_mutation(self):
        rng = random.Random(21)
        streams = _seed_streams(rng)
        live = _scratch(streams)
        # The live tiers open once, BEFORE any mutation, and must track
        # the corpus across epochs; the snapshot engines decompress at
        # construction and are reopened per epoch.
        persistent = {
            name: open_backend(name, live, **_BACKEND_OPTIONS.get(name, {}))
            for name in LIVE_BACKENDS
        }
        tasks = list(Task.all())
        try:
            for step in range(3):
                kind = _random_mutation(rng, live, streams, step)
                reference = open_backend("reference", _scratch(streams))
                expected = {task: reference.run(Query(task=task)).result for task in tasks}
                for name, backend in persistent.items():
                    for task in tasks:
                        outcome = backend.run(Query(task=task))
                        assert results_equal(task, outcome.result, expected[task]), (
                            name, task, kind, step,
                        )
                for name in SNAPSHOT_BACKENDS:
                    backend = open_backend(name, live, **_BACKEND_OPTIONS.get(name, {}))
                    for task in tasks:
                        outcome = backend.run(Query(task=task))
                        assert results_equal(task, outcome.result, expected[task]), (
                            name, task, kind, step,
                        )
        finally:
            for backend in persistent.values():
                close = getattr(backend, "close", None)
                if callable(close):
                    close()


# ----------------------------------------------------------------------------------------
# Serving tiers: mutating traces through all three replay flavours
# ----------------------------------------------------------------------------------------

class TestMutatingReplays:
    @pytest.mark.parametrize(
        "flavour,replay,kwargs",
        [
            ("threads", replay_trace, {"num_threads": 4}),
            ("asyncio", replay_trace_async, {"concurrency": 16}),
            ("sharded", replay_trace_sharded, {"num_shards": 2, "num_threads": 4}),
        ],
    )
    def test_mutating_trace_matches_serial_scratch_baseline(self, flavour, replay, kwargs):
        rng = random.Random(31)
        live = _scratch(_seed_streams(rng, files=4))
        trace = synthesize_trace(
            live.file_names,
            TraceConfig(
                num_requests=36, seed=13, mutation_fraction=0.15, relational_fraction=0.2
            ),
        )
        assert any(isinstance(item, MutationEvent) for item in trace)
        report = replay(live, trace, **kwargs)
        assert report.results_match is True, flavour
        assert report.num_mutations > 0
        assert report.num_requests + report.num_mutations == len(trace)
        assert live.version == report.num_mutations


# ----------------------------------------------------------------------------------------
# Sharded tier: mutation under in-flight traffic, no synchronous fan-out
# ----------------------------------------------------------------------------------------

class TestMutationUnderInflightShardedTraffic:
    def test_concurrent_mutation_is_lazy_and_coherent(self):
        rng = random.Random(41)
        streams = _seed_streams(rng, files=4)
        live = _scratch(streams)
        query = Query(task=Task.WORD_COUNT)
        old_expected = open_backend("reference", _scratch(streams)).run(query).result

        service = ShardedAnalyticsService(
            live, sharded_config=ShardedServiceConfig(num_shards=2)
        )
        try:
            # Warm the old epoch's session + result caches first, so the
            # mutation leaves genuinely stale entries to expire lazily.
            for _ in range(4):
                assert results_equal(
                    query.task, service.submit(query, source=live).result, old_expected
                )
            results = []
            results_lock = threading.Lock()
            errors = []
            started = threading.Barrier(5)

            def worker() -> None:
                try:
                    started.wait()
                    for _ in range(12):
                        outcome = service.submit(query, source=live)
                        with results_lock:
                            results.append(outcome.result)
                except BaseException as error:
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            started.wait()  # mutate while the workers are mid-trace
            tokens = _random_tokens(rng, ["hotA", "hotB", "hotC"], 15, 30)
            live.append_files({"hot": tokens})
            streams["hot"] = tokens
            for thread in threads:
                thread.join()
            assert not errors

            new_expected = open_backend("reference", _scratch(streams)).run(query).result
            # Every in-flight answer is coherent: it reflects exactly the
            # pre- or the post-mutation epoch, never a torn mixture.
            for result in results:
                assert results_equal(query.task, result, old_expected) or results_equal(
                    query.task, result, new_expected
                )
            # The next routed query observes the new epoch.
            assert results_equal(
                query.task, service.submit(query, source=live).result, new_expected
            )

            stats = service.stats()
            # The lazy-epoch contract: the mutation itself broadcast
            # nothing — stale entries were dropped on next touch and are
            # counted as epoch expirations, never as invalidations.
            invalidations = sum(
                shard.session_cache.invalidations + shard.result_cache.invalidations
                for shard in stats.shards
            )
            assert invalidations == 0
            assert stats.epoch_expirations >= 1
        finally:
            service.close()
