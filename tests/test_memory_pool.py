"""Tests for G-TADOC's self-managed GPU memory pool."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.memory_pool import MemoryPool


class TestAllocation:
    def test_basic_allocation(self):
        pool = MemoryPool(capacity=128)
        allocation = pool.allocate("a", 10)
        assert allocation.offset == 0
        assert allocation.size == 10

    def test_alignment_respected(self):
        pool = MemoryPool(capacity=128, alignment=4)
        pool.allocate("a", 3)
        second = pool.allocate("b", 4)
        assert second.offset % 4 == 0
        assert second.offset >= 3

    def test_exhaustion_raises(self):
        pool = MemoryPool(capacity=16)
        pool.allocate("a", 12)
        with pytest.raises(MemoryError):
            pool.allocate("b", 8)

    def test_duplicate_owner_rejected(self):
        pool = MemoryPool(capacity=64)
        pool.allocate("a", 4)
        with pytest.raises(ValueError):
            pool.allocate("a", 4)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(capacity=64).allocate("a", -1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(capacity=0)

    def test_allocate_many(self):
        pool = MemoryPool(capacity=256)
        allocations = pool.allocate_many({"a": 8, "b": 16, "c": 4})
        assert set(allocations) == {"a", "b", "c"}
        assert pool.check_no_overlap()

    def test_zero_size_allocation_allowed(self):
        pool = MemoryPool(capacity=64)
        allocation = pool.allocate("empty", 0)
        assert allocation.size == 0


class TestViews:
    def test_view_is_writable_and_isolated(self):
        pool = MemoryPool(capacity=64)
        a = pool.allocate("a", 8)
        b = pool.allocate("b", 8)
        pool.view(a)[:] = 7
        assert int(pool.view(b).sum()) == 0
        assert int(pool.view(a).sum()) == 56

    def test_owner_view(self):
        pool = MemoryPool(capacity=64)
        pool.allocate("mine", 4)
        pool.owner_view("mine")[0] = 42
        assert int(pool.owner_view("mine")[0]) == 42

    def test_allocation_of_missing_owner(self):
        pool = MemoryPool(capacity=64)
        assert pool.allocation_of("nobody") is None


class TestBookkeeping:
    def test_used_and_free(self):
        pool = MemoryPool(capacity=100, alignment=1)
        pool.allocate("a", 30)
        assert pool.used_words == 30
        assert pool.free_words == 70
        assert pool.used_bytes == 30 * MemoryPool.WORD_BYTES

    def test_reset_clears_everything(self):
        pool = MemoryPool(capacity=64)
        pool.allocate("a", 8)
        pool.owner_view("a")[:] = 3
        pool.reset()
        assert pool.used_words == 0
        assert pool.allocations == []
        assert int(pool.storage.sum()) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=40))
    def test_no_overlap_property(self, sizes):
        pool = MemoryPool(capacity=sum(sizes) * 2 + 8 * len(sizes) + 16)
        for index, size in enumerate(sizes):
            pool.allocate(f"owner{index}", size)
        assert pool.check_no_overlap()
        assert pool.used_words <= pool.capacity

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=20))
    def test_views_never_alias(self, sizes):
        pool = MemoryPool(capacity=sum(sizes) * 2 + 8 * len(sizes) + 16)
        allocations = [pool.allocate(f"o{i}", size) for i, size in enumerate(sizes)]
        for index, allocation in enumerate(allocations):
            pool.view(allocation)[:] = index + 1
        for index, allocation in enumerate(allocations):
            assert set(pool.view(allocation).tolist()) == {index + 1}
