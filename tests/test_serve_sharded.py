"""Tests for sharded serving: routing, replication, resize, replay —
plus regression tests for the trace/replay/simulator bugfixes that ride
along with the shard pool."""

from __future__ import annotations

import random
import threading
import time
from collections import Counter

import pytest

from repro.analytics.base import Task, results_equal
from repro.api import Query, open_backend
from repro.api.query import as_query
from repro.cluster.simulator import ClusterSimulator, ClusterSpec
from repro.compression.compressor import compress_corpus
from repro.data.corpus import Corpus
from repro.perf.counters import CostCounter
from repro.serve import (
    AnalyticsService,
    AsyncAnalyticsService,
    ServiceConfig,
    ShardedAnalyticsService,
    ShardedServiceConfig,
    TraceConfig,
    rendezvous_rank,
    replay_trace,
    replay_trace_sharded,
    synthesize_trace,
)


def _corpus(tag: str, files: int = 3) -> Corpus:
    text = f"alpha beta gamma {tag} delta epsilon {tag} alpha beta gamma " * 3
    return Corpus.from_texts(
        {f"{tag}_{index}.txt": text + f"entry {index}" for index in range(files)},
        name=tag,
    )


@pytest.fixture(scope="module")
def shard_corpora():
    """Six distinct compressed corpora for routing/placement tests."""
    return [compress_corpus(_corpus(f"corpus{index}")) for index in range(6)]


def _pool(num_shards=2, **config) -> ShardedAnalyticsService:
    defaults = dict(
        num_shards=num_shards,
        replication_factor=2,
        hot_query_share=0.6,
        min_queries_for_replication=4,
        shard_workers=2,
    )
    defaults.update(config)
    return ShardedAnalyticsService(
        sharded_config=ShardedServiceConfig(**defaults),
        service_config=ServiceConfig(coalesce_window=0.0),
    )


# ----------------------------------------------------------------------------------------
# Rendezvous hashing
# ----------------------------------------------------------------------------------------

class TestRendezvousRank:
    FINGERPRINTS = [f"fp-{index:04d}" for index in range(64)]

    def test_ranking_is_deterministic(self):
        for fingerprint in self.FINGERPRINTS[:8]:
            assert rendezvous_rank(fingerprint, [0, 1, 2]) == rendezvous_rank(
                fingerprint, [2, 0, 1]
            )

    def test_every_shard_appears_once(self):
        ranked = rendezvous_rank("fp", [3, 1, 4, 1, 5][:3] + [9])
        assert sorted(ranked) == sorted({3, 1, 4, 9})

    def test_adding_a_shard_moves_only_its_winners(self):
        """Keys either keep their owner or move to the *new* shard."""
        moved = 0
        for fingerprint in self.FINGERPRINTS:
            before = rendezvous_rank(fingerprint, [0, 1, 2, 3])[0]
            after = rendezvous_rank(fingerprint, [0, 1, 2, 3, 4])[0]
            if before != after:
                assert after == 4, fingerprint
                moved += 1
        # ~1/5 of keys should move; all of them would under modulo hashing.
        assert 0 < moved < len(self.FINGERPRINTS) // 2

    def test_removing_a_shard_moves_only_its_keys(self):
        for fingerprint in self.FINGERPRINTS:
            before = rendezvous_rank(fingerprint, [0, 1, 2, 3])[0]
            after = rendezvous_rank(fingerprint, [0, 1, 2])[0]
            if before != 3:
                assert after == before, fingerprint

    def test_surviving_order_is_stable_under_removal(self):
        for fingerprint in self.FINGERPRINTS[:16]:
            full = rendezvous_rank(fingerprint, [0, 1, 2, 3])
            reduced = rendezvous_rank(fingerprint, [0, 1, 2])
            assert [shard for shard in full if shard != 3] == reduced


# ----------------------------------------------------------------------------------------
# Routing through the pool
# ----------------------------------------------------------------------------------------

class TestShardedRouting:
    def test_one_corpus_routes_to_one_shard(self, shard_corpora):
        with _pool(num_shards=3) as service:
            compressed = shard_corpora[0]
            for _ in range(3):
                service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            stats = service.stats()
            assert sum(1 for routed in stats.routed_queries if routed) == 1
            assert stats.placements == 3

    def test_routing_is_deterministic_across_pools(self, shard_corpora):
        with _pool(num_shards=3) as first, _pool(num_shards=3) as second:
            for compressed in shard_corpora:
                assert first.shard_for(compressed) == second.shard_for(compressed)

    def test_results_match_reference_through_the_pool(self, shard_corpora):
        compressed = shard_corpora[1]
        reference = open_backend("reference", compressed)
        with _pool(num_shards=2) as service:
            for task in Task.all():
                outcome = service.submit(Query(task=task), source=compressed)
                expected = reference.run(Query(task=task))
                assert results_equal(task, outcome.result, expected.result)

    def test_per_shard_session_lrus_are_isolated(self, shard_corpora):
        """Corpora on different shards never evict each other, even with
        a one-session budget per shard."""
        service = ShardedAnalyticsService(
            sharded_config=ShardedServiceConfig(num_shards=3, hot_query_share=1.0),
            service_config=ServiceConfig(max_sessions=1, coalesce_window=0.0),
        )
        with service:
            by_shard = {}
            for compressed in shard_corpora:
                by_shard.setdefault(service.shard_for(compressed), compressed)
            picked = list(by_shard.values())
            assert len(picked) >= 2  # six corpora over three shards must collide
            for _ in range(2):
                for compressed in picked:
                    service.submit(Query(task=Task.SORT), source=compressed)
            stats = service.stats()
            for index, compressed in by_shard.items():
                assert stats.resident_sessions[index] == 1
            assert sum(shard.session_cache.evictions for shard in stats.shards) == 0

    def test_run_batch_preserves_order_across_shards(self, shard_corpora):
        compressed = shard_corpora[2]
        queries = [Query(task=Task.WORD_COUNT), Query(task=Task.SORT, top_k=3),
                   Query(task=Task.INVERTED_INDEX)]
        with _pool(num_shards=2) as service:
            outcomes = service.run_batch(queries, source=compressed)
            assert [outcome.task for outcome in outcomes] == [q.task for q in queries]
            for query, outcome in zip(queries, outcomes):
                assert outcome.result == service.submit(query, source=compressed).result

    def test_default_source_serves_without_explicit_corpus(self, shard_corpora):
        service = ShardedAnalyticsService(
            shard_corpora[0], sharded_config=ShardedServiceConfig(num_shards=2)
        )
        with service:
            assert service.run(Query(task=Task.WORD_COUNT)).result
        with pytest.raises(ValueError, match="no corpus"):
            with _pool() as empty:
                empty.submit(Query(task=Task.WORD_COUNT))

    def test_unknown_file_error_propagates_to_caller(self, shard_corpora):
        with _pool() as service:
            with pytest.raises(ValueError, match="unknown file"):
                service.submit(
                    Query(task=Task.WORD_COUNT, files=("missing.txt",)),
                    source=shard_corpora[0],
                )

    def test_closed_pool_rejects_queries(self, shard_corpora):
        service = _pool()
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(Query(task=Task.WORD_COUNT), source=shard_corpora[0])

    def test_placement_network_accounting(self, shard_corpora):
        with _pool() as service:
            service.submit(Query(task=Task.WORD_COUNT), source=shard_corpora[0])
            stats = service.stats()
            # One message routes the query, one returns its (non-empty) result.
            assert stats.network_messages == 2.0
            assert stats.network_bytes > 0
            assert stats.network_seconds > 0
            spec = service.config.cluster
            assert stats.network_seconds >= 2.0 * spec.network_latency_s


# ----------------------------------------------------------------------------------------
# Hot-corpus replication
# ----------------------------------------------------------------------------------------

class TestReplication:
    def test_hot_corpus_promotes_and_round_robins(self, shard_corpora):
        hot = shard_corpora[0]
        with _pool(num_shards=2) as service:
            for _ in range(12):
                service.submit(Query(task=Task.SORT, top_k=3), source=hot)
            stats = service.stats()
            assert stats.replica_promotions == 1
            assert stats.replicated_corpora == 1
            assert service.is_replicated(hot)
            assert len(service.owners_for(hot)) == 2
            # Round-robin: both replicas took queries after the promotion.
            assert all(routed > 0 for routed in stats.routed_queries)

    def test_replicas_serve_bit_identical_results(self, shard_corpora):
        hot = shard_corpora[0]
        reference = open_backend("reference", hot)
        expected = reference.run(Query(task=Task.WORD_COUNT))
        with _pool(num_shards=2) as service:
            outcomes = [
                service.submit(Query(task=Task.WORD_COUNT), source=hot)
                for _ in range(10)
            ]
            for outcome in outcomes:
                assert results_equal(Task.WORD_COUNT, outcome.result, expected.result)

    def test_cooling_corpus_demotes(self, shard_corpora):
        hot, others = shard_corpora[0], shard_corpora[1:5]
        with _pool(num_shards=2) as service:
            for _ in range(8):
                service.submit(Query(task=Task.SORT), source=hot)
            assert service.is_replicated(hot)
            # Dilute its share with traffic for other corpora.
            for _ in range(4):
                for compressed in others:
                    service.submit(Query(task=Task.SORT), source=compressed)
            service.submit(Query(task=Task.SORT), source=hot)
            stats = service.stats()
            assert not service.is_replicated(hot)
            assert stats.replica_demotions == 1
            assert len(service.owners_for(hot)) == 1

    def test_heat_decay_lets_a_late_hot_corpus_promote(self, shard_corpora):
        """With exponential decay, share measures *recent* traffic: a
        corpus turning hot after a long cold history still replicates.
        On all-time counts it would need more queries than the pool's
        whole prior history (48+ here) before crossing the threshold."""
        corpora = shard_corpora[:4]
        hot = corpora[0]
        with _pool(num_shards=2, heat_decay_window=16) as service:
            for _ in range(8):  # 32 queries of flat prior history
                for compressed in corpora:
                    service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            assert not service.is_replicated(hot)
            for _ in range(12):
                service.submit(Query(task=Task.WORD_COUNT), source=hot)
            assert service.is_replicated(hot)

    def test_demotion_has_hysteresis(self, shard_corpora):
        """A share hovering just under the promotion threshold does not
        demote (no flapping); demotion needs a clearly decayed share."""
        hot, cold = shard_corpora[0], shard_corpora[1]
        with _pool(num_shards=2) as service:  # promote at 0.6, demote below 0.48
            for _ in range(8):
                service.submit(Query(task=Task.SORT), source=hot)
            assert service.is_replicated(hot)
            for _ in range(8):  # hot share falls to 0.5 — between the bounds
                service.submit(Query(task=Task.SORT), source=cold)
            assert service.is_replicated(hot)
            for _ in range(4):  # 0.4 — below the demotion bound
                service.submit(Query(task=Task.SORT), source=cold)
            assert not service.is_replicated(hot)
            assert service.stats().replica_demotions == 1

    def test_heat_decay_window_validated(self):
        with pytest.raises(ValueError, match="heat_decay_window"):
            ShardedServiceConfig(heat_decay_window=0)

    def test_idle_hot_corpus_is_demoted_by_other_traffic(self, shard_corpora):
        """A promoted corpus whose traffic stops must not stay replicated:
        any other corpus's queries sweep its decayed share."""
        hot, cold = shard_corpora[0], shard_corpora[1]
        with _pool(num_shards=2) as service:
            for _ in range(8):
                service.submit(Query(task=Task.SORT), source=hot)
            assert service.is_replicated(hot)
            for _ in range(10):  # only the *other* corpus is queried now
                service.submit(Query(task=Task.SORT), source=cold)
            assert not service.is_replicated(hot)
            assert service.stats().replica_demotions == 1

    def test_router_state_is_bounded(self):
        corpora = [compress_corpus(_corpus(f"bound{index}", files=1)) for index in range(6)]
        with _pool(num_shards=2, max_tracked_corpora=3) as service:
            for compressed in corpora:
                service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            assert len(service._fingerprint_queries) <= 3
            assert len(service._rank_cache) <= 3
        with pytest.raises(ValueError, match="max_tracked_corpora"):
            ShardedServiceConfig(max_tracked_corpora=0)

    def test_single_shard_pool_never_replicates(self, shard_corpora):
        with _pool(num_shards=1) as service:
            for _ in range(12):
                service.submit(Query(task=Task.SORT), source=shard_corpora[0])
            stats = service.stats()
            assert stats.replica_promotions == 0
            assert stats.replicated_corpora == 0

    def test_replication_threshold_validated(self):
        with pytest.raises(ValueError):
            ShardedServiceConfig(hot_query_share=0.0)
        with pytest.raises(ValueError):
            ShardedServiceConfig(hot_query_share=1.5)
        with pytest.raises(ValueError):
            ShardedServiceConfig(num_shards=0)
        with pytest.raises(ValueError):
            ShardedServiceConfig(replication_factor=0)
        with pytest.raises(ValueError):
            ShardedServiceConfig(min_queries_for_replication=0)
        with pytest.raises(ValueError):
            ShardedServiceConfig(shard_workers=0)


# ----------------------------------------------------------------------------------------
# Resizing the pool
# ----------------------------------------------------------------------------------------

class TestResize:
    def test_growth_moves_only_keys_whose_owner_changed(self, shard_corpora):
        with _pool(num_shards=2, hot_query_share=1.0) as service:
            for compressed in shard_corpora:
                service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            before = {
                compressed.fingerprint(): service.shard_for(compressed)
                for compressed in shard_corpora
            }
            shard_objects = list(service._shards)
            moved = service.resize(3)
            after = {
                compressed.fingerprint(): service.shard_for(compressed)
                for compressed in shard_corpora
            }
            changed = [fp for fp in before if before[fp] != after[fp]]
            # The moved-session counter matches the owner changes exactly,
            # and unmoved corpora stay resident on their original shard.
            assert moved == len(changed)
            stats = service.stats()
            assert stats.moved_sessions == moved
            # Rebalancing moves are not data-invalidation events.
            assert all(shard.session_cache.invalidations == 0 for shard in stats.shards)
            for index, shard in enumerate(shard_objects):
                for key in shard.transport.session_keys():
                    assert after[key[0]] == index

    def test_growth_with_no_sessions_moves_nothing(self):
        with _pool(num_shards=2) as service:
            assert service.resize(4) == 0
            assert service.num_shards == 4

    def test_shrink_drains_removed_shards(self, shard_corpora):
        with _pool(num_shards=3, hot_query_share=1.0) as service:
            for compressed in shard_corpora:
                service.submit(Query(task=Task.WORD_COUNT), source=compressed)
            resident_before = service.resident_sessions
            moved = service.resize(1)
            assert service.num_shards == 1
            # Everything that was not already on the surviving shard moved.
            assert moved == resident_before - service.resident_sessions
            # The pool still serves every corpus afterwards.
            for compressed in shard_corpora:
                assert service.submit(Query(task=Task.SORT), source=compressed).result

    def test_resize_under_concurrent_traffic_never_strands_a_query(self, shard_corpora):
        """Routing and enqueueing are atomic against resize: a query can
        never hit a shard executor that a concurrent shrink shut down."""
        corpora = shard_corpora[:4]
        with _pool(num_shards=3) as service:
            errors: list = []
            done = threading.Event()

            def traffic():
                index = 0
                while not done.is_set():
                    try:
                        service.submit(
                            Query(task=Task.WORD_COUNT),
                            source=corpora[index % len(corpora)],
                        )
                    except BaseException as error:
                        errors.append(error)
                        return
                    index += 1

            workers = [threading.Thread(target=traffic) for _ in range(4)]
            for worker in workers:
                worker.start()
            for size in (1, 3, 2, 4):
                service.resize(size)
                time.sleep(0.005)
            done.set()
            for worker in workers:
                worker.join()
            assert not errors

    def test_resize_to_same_size_is_a_no_op(self, shard_corpora):
        with _pool(num_shards=2) as service:
            service.submit(Query(task=Task.WORD_COUNT), source=shard_corpora[0])
            assert service.resize(2) == 0

    def test_resize_rejects_non_positive(self):
        with _pool() as service:
            with pytest.raises(ValueError):
                service.resize(0)


# ----------------------------------------------------------------------------------------
# Invalidation across the pool
# ----------------------------------------------------------------------------------------

class TestShardedInvalidation:
    def test_invalidate_drops_entries_on_every_replica(self, shard_corpora):
        hot = shard_corpora[0]
        with _pool(num_shards=2) as service:
            for _ in range(12):
                service.submit(Query(task=Task.SORT), source=hot)
            assert service.is_replicated(hot)
            assert service.resident_sessions >= 2  # a session on each replica
            dropped = service.invalidate(hot)
            assert dropped >= 2
            stats = service.stats()
            assert all(resident == 0 for resident in stats.resident_sessions)


# ----------------------------------------------------------------------------------------
# The async shard client
# ----------------------------------------------------------------------------------------

class TestAsyncShardRouter:
    def test_router_mode_serves_and_counts_placements(self, shard_corpora):
        import asyncio

        compressed = shard_corpora[0]
        reference = open_backend("reference", compressed)
        expected = reference.run(Query(task=Task.WORD_COUNT))
        with _pool(num_shards=2) as router:
            client = AsyncAnalyticsService(router=router)

            async def burst():
                return await asyncio.gather(
                    *(
                        client.submit(Query(task=Task.WORD_COUNT), source=compressed)
                        for _ in range(6)
                    )
                )

            try:
                outcomes = asyncio.run(burst())
            finally:
                client.close()
            for outcome in outcomes:
                assert results_equal(Task.WORD_COUNT, outcome.result, expected.result)
            # stats()/resident_sessions delegate to the router.
            assert client.stats().placements == router.stats().placements == 6
            assert client.resident_sessions == router.resident_sessions

    def test_router_mode_run_batch_keeps_order(self, shard_corpora):
        import asyncio

        compressed = shard_corpora[1]
        queries = [Query(task=Task.WORD_COUNT), Query(task=Task.SORT, top_k=4)]
        with _pool(num_shards=2) as router:
            client = AsyncAnalyticsService(router=router)
            try:
                outcomes = asyncio.run(client.run_batch(queries, source=compressed))
            finally:
                client.close()
            assert [outcome.task for outcome in outcomes] == [q.task for q in queries]


# ----------------------------------------------------------------------------------------
# Sharded replay
# ----------------------------------------------------------------------------------------

class TestShardedReplay:
    def _trace(self, corpora, per_corpus=6):
        trace = []
        for index, compressed in enumerate(corpora):
            for query in synthesize_trace(
                compressed.file_names,
                TraceConfig(num_requests=per_corpus, seed=11 + index),
            ):
                trace.append((index, query))
        return trace

    def test_multi_corpus_replay_matches_serial(self, shard_corpora):
        corpora = shard_corpora[:3]
        report = replay_trace_sharded(
            corpora, self._trace(corpora), num_shards=2, num_threads=4
        )
        assert report.mode == "threads+sharded"
        assert report.num_shards == 2
        assert report.results_match
        assert report.stats.kernel_launches < report.serial_launches
        assert report.stats.placements == report.num_requests

    def test_no_shard_exceeds_its_session_budget(self, shard_corpora):
        corpora = shard_corpora[:4]
        report = replay_trace_sharded(
            corpora,
            self._trace(corpora),
            num_shards=2,
            num_threads=4,
            service_config=ServiceConfig(max_sessions=2),
        )
        for shard in report.stats.shards:
            assert shard.session_cache.size <= 2

    def test_async_router_replay_matches_serial(self, shard_corpora):
        corpora = shard_corpora[:2]
        report = replay_trace_sharded(
            corpora,
            self._trace(corpora, per_corpus=5),
            num_shards=2,
            use_async=True,
            concurrency=10,
        )
        assert report.mode == "asyncio+sharded"
        assert report.results_match

    def test_single_corpus_trace_still_works(self, shard_corpora):
        compressed = shard_corpora[0]
        trace = synthesize_trace(
            compressed.file_names, TraceConfig(num_requests=10, seed=3)
        )
        report = replay_trace_sharded(compressed, trace, num_shards=2, num_threads=2)
        assert report.results_match

    def test_trace_with_out_of_range_source_rejected(self, shard_corpora):
        with pytest.raises(ValueError, match="source"):
            replay_trace_sharded(
                shard_corpora[:2],
                [(5, Query(task=Task.WORD_COUNT))],
                num_shards=2,
            )


# ----------------------------------------------------------------------------------------
# Regression: synthesize_trace repeat bias + subset cap
# ----------------------------------------------------------------------------------------

class TestTraceRepeatBias:
    NAMES = tuple(f"f{index}.txt" for index in range(4))

    @pytest.mark.parametrize("seed", (17, 3, 99))
    def test_repeats_spread_over_distinct_queries(self, seed):
        """Repeats sample the distinct fresh queries uniformly; sampling
        the trace itself compounded weight onto the earliest queries
        (max shares of 0.24-0.43 on these seeds before the fix)."""
        trace = synthesize_trace(
            self.NAMES, TraceConfig(num_requests=400, seed=seed, repeat_fraction=0.8)
        )
        counts = Counter(trace)
        assert max(counts.values()) / len(trace) <= 0.15

    def test_repeats_only_replay_fresh_queries(self):
        trace = synthesize_trace(
            self.NAMES, TraceConfig(num_requests=200, seed=5, repeat_fraction=0.9)
        )
        assert len(set(trace)) < len(trace)  # repeats did happen

    def test_max_subset_files_lifts_the_two_file_cap(self):
        config = TraceConfig(
            num_requests=120,
            seed=7,
            repeat_fraction=0.0,
            file_subset_fraction=1.0,
            max_subset_files=3,
        )
        trace = synthesize_trace(self.NAMES, config)
        sizes = {len(query.files) for query in trace if query.files}
        assert 3 in sizes
        assert max(sizes) <= 3

    def test_default_keeps_the_historical_cap(self):
        config = TraceConfig(
            num_requests=80, seed=7, repeat_fraction=0.0, file_subset_fraction=1.0
        )
        trace = synthesize_trace(self.NAMES, config)
        assert max(len(query.files) for query in trace if query.files) <= 2

    def test_max_subset_files_validated(self):
        with pytest.raises(ValueError, match="max_subset_files"):
            TraceConfig(max_subset_files=0)


# ----------------------------------------------------------------------------------------
# Regression: replay_trace stops every worker on first error
# ----------------------------------------------------------------------------------------

class TestReplayStopsOnError:
    def test_workers_stop_claiming_after_first_error(
        self, tiny_compressed, monkeypatch
    ):
        calls = []
        original = AnalyticsService.submit

        def counting_submit(self, query, **kwargs):
            calls.append(query)
            time.sleep(0.002)  # give the stop flag time to matter
            return original(self, query, **kwargs)

        monkeypatch.setattr(AnalyticsService, "submit", counting_submit)
        good = Query(task=Task.WORD_COUNT)
        bad = Query(task=Task.WORD_COUNT, files=("missing.txt",))
        trace = [good, bad] + [Query(task=Task.SORT, top_k=k) for k in range(1, 61)]
        with pytest.raises(ValueError, match="unknown file"):
            replay_trace(
                tiny_compressed,
                trace,
                num_threads=4,
                serial_baseline=False,
                service_config=ServiceConfig(coalesce_window=0.0),
            )
        # Before the fix the surviving workers drained the whole trace.
        assert len(calls) < len(trace) // 2

    def test_original_exception_type_is_unmasked(self, tiny_compressed):
        trace = [Query(task=Task.WORD_COUNT, files=("missing.txt",))]
        with pytest.raises(ValueError, match="unknown file"):
            replay_trace(tiny_compressed, trace, num_threads=2, serial_baseline=False)


# ----------------------------------------------------------------------------------------
# Regression: cluster shuffle accounting
# ----------------------------------------------------------------------------------------

class TestSimulatorShuffleAccounting:
    def test_empty_partitions_send_no_messages(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=2))
        counters = [CostCounter(compute_ops=10), CostCounter(compute_ops=20)]
        executions = simulator.execute(counters, [0, 5])
        assert executions[0].counter.network_messages == 0
        assert executions[0].counter.network_bytes == 0
        assert executions[1].counter.network_messages == 1

    def test_init_style_phase_charges_zero_shuffle(self):
        """The distributed baseline's initialization phase (all-zero
        entries) used to charge one phantom message per partition."""
        simulator = ClusterSimulator(ClusterSpec(num_nodes=3))
        counters = [CostCounter(compute_ops=1) for _ in range(6)]
        executions = simulator.execute(counters, [0] * 6)
        shuffle = simulator.shuffle_counter(executions)
        assert shuffle.network_messages == 0
        assert shuffle.network_bytes == 0

    def test_empty_nodes_listed_by_default_and_flagged_off(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=4))
        counters = [CostCounter(compute_ops=1), CostCounter(compute_ops=1)]
        full = simulator.execute(counters, [1, 1])
        assert len(full) == 4  # idle nodes reported for utilisation views
        assert [execution.partition_indices for execution in full[2:]] == [[], []]
        active = simulator.execute(counters, [1, 1], include_empty_nodes=False)
        assert len(active) == 2
        assert all(execution.partition_indices for execution in active)

    def test_non_empty_accounting_unchanged(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=2))
        counters = [CostCounter(compute_ops=10), CostCounter(compute_ops=20),
                    CostCounter(compute_ops=30)]
        executions = simulator.execute(counters, [5, 5, 5])
        assert executions[0].counter.network_messages == 2
        assert executions[1].counter.network_messages == 1


# ----------------------------------------------------------------------------------------
# Concurrency: the pool under concurrent mixed traffic
# ----------------------------------------------------------------------------------------

class TestShardedConcurrency:
    def test_concurrent_mixed_traffic_bit_identical_to_serial(self, shard_corpora):
        corpora = shard_corpora[:3]
        rng = random.Random(23)
        plan = [
            (rng.randrange(len(corpora)), query)
            for index in range(3)
            for query in synthesize_trace(
                corpora[index].file_names, TraceConfig(num_requests=8, seed=index)
            )
        ]
        with _pool(num_shards=2) as service:
            outcomes: list = [None] * len(plan)
            errors: list = []

            def worker(positions):
                for position in positions:
                    index, query = plan[position]
                    try:
                        outcomes[position] = service.submit(query, source=corpora[index])
                    except BaseException as error:  # pragma: no cover
                        errors.append(error)
                        return

            threads = [
                threading.Thread(target=worker, args=(range(start, len(plan), 4),))
                for start in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
        for (index, query), outcome in zip(plan, outcomes):
            reference = open_backend("reference", corpora[index]).run(as_query(query))
            assert results_equal(query.task, outcome.result, reference.result)
