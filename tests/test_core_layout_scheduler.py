"""Tests for the device layout, the fine-grained scheduler and the strategy selector."""

from __future__ import annotations

import pytest

from repro.analytics.base import Task
from repro.compression.grammar import is_rule_ref
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import (
    FineGrainedScheduler,
    VerticalPartitioningScheduler,
)
from repro.core.strategy import TraversalStrategy, TraversalStrategySelector


@pytest.fixture(scope="module")
def layout(few_files_compressed) -> DeviceRuleLayout:
    return DeviceRuleLayout.from_compressed(few_files_compressed)


@pytest.fixture(scope="module")
def many_files_layout(many_files_compressed) -> DeviceRuleLayout:
    return DeviceRuleLayout.from_compressed(many_files_compressed)


class TestLayout:
    def test_shapes_match_grammar(self, layout, few_files_compressed):
        grammar = few_files_compressed.grammar
        assert layout.num_rules == len(grammar)
        assert layout.rule_lengths == [len(rule) for rule in grammar]
        assert layout.num_files == len(few_files_compressed.file_names)

    def test_local_words_exclude_splitters(self, many_files_layout, many_files_compressed):
        for words in many_files_layout.local_words:
            for word_id, _count in words:
                assert not many_files_compressed.is_splitter(word_id)

    def test_local_word_totals_equal_corpus_tokens(self, layout, few_files_compressed):
        total = 0
        for rule_id, words in enumerate(layout.local_words):
            weight = layout.rule_weights[rule_id]
            total += weight * sum(count for _word, count in words)
        assert total == few_files_compressed.original_tokens

    def test_num_in_edges_exclude_root(self, layout):
        # A rule referenced only by the root must have zero in-edges.
        root_children = {child for child, _count in layout.subrules[0]}
        only_root = [
            rule_id
            for rule_id in range(1, layout.num_rules)
            if layout.parents[rule_id] == [0]
        ]
        for rule_id in only_root:
            assert rule_id in root_children
            assert layout.num_in_edges[rule_id] == 0

    def test_root_elements_cover_all_non_splitter_positions(self, layout, few_files_compressed):
        non_splitters = [
            symbol
            for symbol in few_files_compressed.grammar.root.symbols
            if is_rule_ref(symbol) or not few_files_compressed.is_splitter(symbol)
        ]
        assert len(layout.root_elements) == len(non_splitters)

    def test_root_per_file_tables_consistent_with_segments(self, layout):
        for file_index, (start, end) in enumerate(layout.root_segments):
            rule_occurrences = sum(layout.root_subrule_freq_per_file[file_index].values())
            word_occurrences = sum(layout.root_words_per_file[file_index].values())
            assert rule_occurrences + word_occurrences == sum(
                1 for element in layout.root_elements if element.file_index == file_index
            )

    def test_expansion_lengths_and_weights_forwarded(self, layout, few_files_compressed):
        assert layout.expansion_lengths == list(few_files_compressed.dag.expansion_lengths)
        assert layout.rule_weights == list(few_files_compressed.dag.weights)

    def test_device_footprint_positive(self, layout):
        assert layout.device_footprint_bytes() > 0

    def test_rule_bodies_are_copies(self, layout, few_files_compressed):
        assert layout.rule_bodies[1] == few_files_compressed.grammar[1].symbols
        assert layout.rule_bodies[1] is not few_files_compressed.grammar[1].symbols


class TestFineGrainedScheduler:
    def test_one_thread_per_small_rule(self, layout):
        scheduler = FineGrainedScheduler(layout)
        for rule_id in range(1, layout.num_rules):
            if layout.rule_lengths[rule_id] <= 16 * layout.average_rule_length:
                assert scheduler.group_size_for(rule_id) == 1

    def test_root_gets_thread_group(self, layout):
        """The root rule is far longer than average and must get extra threads."""
        scheduler = FineGrainedScheduler(layout)
        if layout.rule_lengths[0] > 16 * layout.average_rule_length:
            assert scheduler.group_size_for(0) > 1

    def test_group_size_respects_cap(self, layout):
        scheduler = FineGrainedScheduler(layout, max_group_size=4)
        assert max(scheduler.group_size_for(r) for r in range(layout.num_rules)) <= 4

    def test_lower_threshold_creates_more_groups(self, layout):
        low = FineGrainedScheduler(layout, oversize_threshold=2.0).summary()["grouped_rules"]
        high = FineGrainedScheduler(layout, oversize_threshold=64.0).summary()["grouped_rules"]
        assert low >= high

    def test_assignments_cover_rule_bodies(self, layout):
        scheduler = FineGrainedScheduler(layout)
        rule_ids = list(range(layout.num_rules))
        assignments = scheduler.thread_assignments(rule_ids)
        covered = {rule_id: 0 for rule_id in rule_ids}
        for assignment in assignments:
            covered[assignment.rule_id] += assignment.span
        for rule_id in rule_ids:
            assert covered[rule_id] == layout.rule_lengths[rule_id]

    def test_assignment_thread_ids_dense(self, layout):
        scheduler = FineGrainedScheduler(layout)
        assignments = scheduler.thread_assignments(range(layout.num_rules))
        assert [assignment.thread_id for assignment in assignments] == list(range(len(assignments)))

    def test_partition_items_covers_items(self, layout):
        scheduler = FineGrainedScheduler(layout)
        rule_ids = list(range(layout.num_rules))
        items = [len(layout.local_words[rule_id]) for rule_id in rule_ids]
        assignments = scheduler.partition_items(rule_ids, items)
        covered = {rule_id: 0 for rule_id in rule_ids}
        for assignment in assignments:
            covered[assignment.rule_id] += assignment.span
        assert covered == dict(zip(rule_ids, items))

    def test_partition_items_length_mismatch(self, layout):
        scheduler = FineGrainedScheduler(layout)
        with pytest.raises(ValueError):
            scheduler.partition_items([0, 1], [3])

    def test_invalid_parameters_rejected(self, layout):
        with pytest.raises(ValueError):
            FineGrainedScheduler(layout, oversize_threshold=0)
        with pytest.raises(ValueError):
            FineGrainedScheduler(layout, max_group_size=0)

    def test_summary_totals(self, layout):
        scheduler = FineGrainedScheduler(layout)
        summary = scheduler.summary()
        assert summary["rules"] == layout.num_rules
        assert summary["threads"] >= layout.num_rules


class TestVerticalPartitioning:
    def test_partitions_cover_root_elements(self, many_files_layout):
        scheduler = VerticalPartitioningScheduler(many_files_layout, num_partitions=8)
        partitions = scheduler.partition_root()
        positions = [position for partition in partitions for position in partition]
        assert sorted(positions) == list(range(len(many_files_layout.root_elements)))

    def test_redundancy_at_least_one(self, many_files_layout):
        scheduler = VerticalPartitioningScheduler(many_files_layout, num_partitions=8)
        assert scheduler.redundancy_factor() >= 1.0

    def test_more_partitions_means_more_redundancy(self, many_files_layout):
        few = VerticalPartitioningScheduler(many_files_layout, num_partitions=2).redundancy_factor()
        many = VerticalPartitioningScheduler(many_files_layout, num_partitions=64).redundancy_factor()
        assert many >= few

    def test_invalid_partition_count(self, many_files_layout):
        with pytest.raises(ValueError):
            VerticalPartitioningScheduler(many_files_layout, num_partitions=0)


class TestStrategySelector:
    def test_sequence_count_uses_dedicated_pipeline(self, layout):
        decision = TraversalStrategySelector(layout).select(Task.SEQUENCE_COUNT)
        assert decision.strategy is TraversalStrategy.TOP_DOWN

    def test_many_files_prefers_bottom_up_for_term_vector(self, many_files_layout):
        decision = TraversalStrategySelector(many_files_layout).select(Task.TERM_VECTOR)
        assert decision.strategy is TraversalStrategy.BOTTOM_UP

    def test_decision_reports_costs(self, layout):
        decision = TraversalStrategySelector(layout).select(Task.WORD_COUNT)
        assert set(decision.estimated_costs) == {"top_down", "bottom_up"}
        assert decision.reason

    def test_selected_strategy_has_lower_estimate(self, layout, many_files_layout):
        for target in (layout, many_files_layout):
            for task in (Task.WORD_COUNT, Task.TERM_VECTOR, Task.INVERTED_INDEX):
                decision = TraversalStrategySelector(target).select(task)
                costs = decision.estimated_costs
                chosen = costs[decision.strategy.value.replace("top_down", "top_down")]
                assert chosen == min(costs.values())
