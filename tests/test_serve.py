"""Serving-layer tests: caches, coalescing, concurrency, invalidation.

The centrepiece is the concurrency suite: N worker threads submitting
mixed queries through :class:`~repro.serve.AnalyticsService` must
produce results bit-identical to serial per-query execution while
launching strictly fewer kernels per query; the session LRU must respect
its bound; and the result cache must never serve stale results across a
corpus change.
"""

from __future__ import annotations

import threading

import pytest

from repro.analytics.base import Task, results_equal
from repro.api import Query, open_backend
from repro.api.backends import GTadocBackend
from repro.compression.compressor import compress_corpus
from repro.core.engine import GTadoc
from repro.core.session import (
    FILE_WEIGHTS,
    LOCAL_TABLES,
    RULE_WEIGHTS,
    DeviceSession,
    GTadocConfig,
)
from repro.core.strategy import TraversalStrategy
from repro.data.corpus import Corpus
from repro.serve import (
    AnalyticsService,
    LRUCache,
    ServiceConfig,
    TraceConfig,
    approx_size_bytes,
    replay_trace,
    synthesize_trace,
)

NUM_THREADS = 8


# ----------------------------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------------------------

class TestLRUCache:
    def test_capacity_bound_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_stats_count_hits_misses_evictions_invalidations(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.put("b", 2)  # evicts "a"
        cache.remove_where(lambda key: key == "b")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.evictions == 1 and stats.invalidations == 1
        assert stats.hit_rate == 0.5
        assert stats.size == 0 and stats.capacity == 1

    def test_get_or_create_builds_once_under_concurrency(self):
        cache = LRUCache(4)
        builds = []
        barrier = threading.Barrier(NUM_THREADS)
        values = []

        def worker() -> None:
            barrier.wait()
            value, _created = cache.get_or_create("key", lambda: builds.append(1) or object())
            values.append(value)

        threads = [threading.Thread(target=worker) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert all(value is values[0] for value in values)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLRUCacheByteBudget:
    def test_budget_evicts_by_weight_lru_first(self):
        cache = LRUCache(10, max_weight_bytes=100)
        cache.put("a", "x", weight=60)
        cache.put("b", "y", weight=60)  # over budget: evicts "a"
        assert cache.get("a") is None and cache.get("b") == "y"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.weight_bytes == 60
        assert stats.weight_capacity == 100

    def test_oversized_entry_is_rejected_without_flushing_residents(self):
        cache = LRUCache(10, max_weight_bytes=100)
        cache.put("a", "x", weight=40)
        cache.put("b", "y", weight=40)
        assert cache.put_if("big", "z", weight=1000) is False
        # The uncacheable entry must not have evicted anything on its way out.
        assert cache.get("a") == "x" and cache.get("b") == "y"
        assert cache.get("big") is None
        assert cache.stats().evictions == 0

    def test_replacing_an_entry_releases_its_weight(self):
        cache = LRUCache(10, max_weight_bytes=100)
        cache.put("a", "x", weight=80)
        cache.put("a", "y", weight=30)  # replacement, not accumulation
        cache.put("b", "z", weight=60)  # 30 + 60 fits: nothing evicted
        assert cache.get("a") == "y" and cache.get("b") == "z"
        assert cache.stats().weight_bytes == 90
        assert cache.stats().evictions == 0

    def test_remove_where_releases_weight(self):
        cache = LRUCache(10, max_weight_bytes=100)
        cache.put("a", "x", weight=70)
        cache.remove_where(lambda key: key == "a")
        assert cache.stats().weight_bytes == 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            LRUCache(4, max_weight_bytes=0)


class TestLRUCacheDiscard:
    def test_discard_removes_and_counts_invalidation(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.discard("k") is True
        assert cache.discard("k") is False
        assert len(cache) == 0
        assert cache.stats().invalidations == 1

    def test_discard_when_is_identity_precise(self):
        cache = LRUCache(4)
        first, second = object(), object()
        cache.put("k", first)
        cache.put("k", second)  # replaced: "first" is no longer resident
        assert cache.discard("k", when=lambda value: value is first) is False
        assert cache.get("k") is second
        assert cache.discard("k", when=lambda value: value is second) is True
        assert len(cache) == 0


class TestLRUCacheTTL:
    def test_expired_entries_miss_and_count_expirations(self):
        now = [0.0]
        cache = LRUCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        assert cache.get("a") == 1
        now[0] = 11.0
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.hits == 1 and stats.misses == 1
        assert stats.size == 0
        assert stats.ttl == 10.0

    def test_fresh_entries_survive(self):
        now = [0.0]
        cache = LRUCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 9.0
        assert cache.get("a") == 1

    def test_stats_collects_expired_entries(self):
        now = [0.0]
        cache = LRUCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 20.0
        cache.put("b", 2)  # writes never scan for expiry (hot path)
        stats = cache.stats()
        assert stats.size == 1 and stats.expirations == 1

    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ValueError):
            LRUCache(4, ttl=0.0)

    def test_contains_is_a_pure_peek(self):
        now = [0.0]
        cache = LRUCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        now[0] = 11.0
        assert "a" not in cache  # expired entries do not count
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0  # no counter was touched


class TestApproxSize:
    def test_grows_with_content(self):
        small = approx_size_bytes({"a": 1})
        large = approx_size_bytes({f"word{i}": i for i in range(100)})
        assert large > small > 0

    def test_walks_nested_results(self):
        flat = approx_size_bytes({"f": {}})
        nested = approx_size_bytes({"f": {"w": 1, "x": 2}})
        assert nested > flat
        postings = approx_size_bytes({"w": [("file", 3)] * 10})
        assert postings > approx_size_bytes({"w": []})


# ----------------------------------------------------------------------------------------
# Corpus fingerprints (the session/result cache key)
# ----------------------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_recompression(self, tiny_corpus):
        assert (
            compress_corpus(tiny_corpus).fingerprint()
            == compress_corpus(tiny_corpus).fingerprint()
        )

    def test_content_change_changes_fingerprint(self):
        before = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta alpha"}))
        after = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta gamma"}))
        assert before.fingerprint() != after.fingerprint()

    def test_display_name_does_not_participate(self):
        texts = {"a.txt": "alpha beta alpha beta"}
        one = compress_corpus(Corpus.from_texts(texts, name="first"))
        two = compress_corpus(Corpus.from_texts(texts, name="second"))
        assert one.fingerprint() == two.fingerprint()


# ----------------------------------------------------------------------------------------
# DeviceSession thread safety
# ----------------------------------------------------------------------------------------

class TestSessionThreadSafety:
    def test_concurrent_state_builds_happen_once(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        barrier = threading.Barrier(NUM_THREADS)
        seen = []

        def worker(index: int) -> None:
            barrier.wait()
            key = (RULE_WEIGHTS, LOCAL_TABLES, FILE_WEIGHTS)[index % 3]
            seen.append((key, id(session.state(key))))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread asking for a key got the same built object.
        by_key = {}
        for key, identity in seen:
            by_key.setdefault(key, set()).add(identity)
        assert all(len(identities) == 1 for identities in by_key.values())
        # One drain collects all construction work; a second finds none.
        init_record, shared_record = session.drain_new_records()
        assert shared_record.num_launches > 0
        init_again, shared_again = session.drain_new_records()
        assert init_again.num_launches == 0 and shared_again.num_launches == 0

    def test_concurrent_batches_serialize_and_charge_init_once(self, tiny_compressed):
        engine = GTadoc(tiny_compressed)
        batches = []

        def worker() -> None:
            batches.append(engine.run_batch([Task.WORD_COUNT, Task.SORT]))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = GTadoc(tiny_compressed).run_batch([Task.WORD_COUNT, Task.SORT])
        shared_total = sum(batch.shared_kernel_launches for batch in batches)
        assert shared_total == reference.shared_kernel_launches
        for batch in batches:
            assert batch[Task.WORD_COUNT].result == reference[Task.WORD_COUNT].result
            assert batch[Task.SORT].result == reference[Task.SORT].result


# ----------------------------------------------------------------------------------------
# Batch-level shared figures (run_batch attribution bugfix)
# ----------------------------------------------------------------------------------------

class TestBatchSharedFigures:
    def test_batch_reports_scheduler_summary_once(self, tiny_compressed):
        engine = GTadoc(tiny_compressed)
        batch = engine.run_batch([Task.WORD_COUNT, Task.SORT])
        assert batch.scheduler_summary["rules"] == engine.layout.num_rules
        for result in batch.values():
            assert result.scheduler_summary == {}

    def test_single_run_keeps_its_own_summary(self, tiny_compressed):
        outcome = GTadoc(tiny_compressed).run(Task.WORD_COUNT)
        assert outcome.scheduler_summary["rules"] > 0

    def test_non_config_sequence_length_pool_delta_is_marginal(self, few_files_compressed):
        engine = GTadoc(few_files_compressed)
        engine.run_batch([Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP)
        batch = engine.run_batch([Task.SEQUENCE_COUNT], sequence_length=5)
        assert batch[Task.SEQUENCE_COUNT].memory_pool_bytes > 0
        pool = engine.session.memory_pool
        assert pool is not None and pool.check_no_overlap()
        assert batch.memory_pool_bytes == pool.used_bytes

    def test_off_config_lengths_do_not_starve_local_tables(self, many_files_compressed):
        # An off-config sequence length must bring its own pool capacity:
        # the local-table budget has to survive for a later bottom-up task.
        engine = GTadoc(many_files_compressed)
        engine.run_batch([Task.SEQUENCE_COUNT], sequence_length=20)
        batch = engine.run_batch([Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP)
        reference = GTadoc(many_files_compressed).run(
            Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP
        )
        assert batch[Task.WORD_COUNT].result == reference.result
        assert engine.session.memory_pool.check_no_overlap()


# ----------------------------------------------------------------------------------------
# AnalyticsService: the concurrency suite
# ----------------------------------------------------------------------------------------

class TestServiceConcurrency:
    def test_mixed_concurrent_queries_bit_identical_to_serial(self, few_files_compressed):
        trace = synthesize_trace(
            few_files_compressed.file_names, TraceConfig(num_requests=32, seed=5)
        )
        report = replay_trace(few_files_compressed, trace, num_threads=NUM_THREADS)
        assert report.results_match
        # The acceptance criterion: strictly fewer kernel launches per
        # query than serial per-query run() execution.
        assert report.stats.kernel_launches < report.serial_launches
        assert report.served_launches_per_query < report.serial_launches_per_query

    def test_simultaneous_compatible_queries_coalesce(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.05),
        )
        tasks = Task.all()
        barrier = threading.Barrier(len(tasks))
        outcomes = {}

        def worker(task: Task) -> None:
            barrier.wait()
            outcomes[task] = service.submit(Query(task=task))

        threads = [threading.Thread(target=worker, args=(task,)) for task in tasks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()
        assert stats.executed_queries == len(tasks)
        assert stats.micro_batches < len(tasks)
        assert stats.coalesced_queries >= 2
        assert any(outcome.details["batch_size"] > 1 for outcome in outcomes.values())

    def test_error_reaches_only_the_offending_caller(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        with pytest.raises(ValueError, match="unknown file"):
            service.submit(Query(task=Task.WORD_COUNT, files=("missing.txt",)))
        outcome = service.submit(Query(task=Task.WORD_COUNT))
        assert outcome.result

    def test_rejected_queries_do_not_skew_stats(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        for _ in range(3):
            with pytest.raises(ValueError):
                service.submit(Query(task=Task.WORD_COUNT, files=("missing.txt",)))
        service.submit(Query(task=Task.WORD_COUNT))
        stats = service.stats()
        assert stats.queries == 1
        assert stats.result_cache.misses == 1
        assert stats.queries == stats.executed_queries + stats.result_cache.hits

    def test_idle_coalescing_groups_are_dropped(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        for task in (Task.WORD_COUNT, Task.SORT):
            service.submit(Query(task=task))
        service.submit(Query(task=Task.SEQUENCE_COUNT, sequence_length=4))
        # Every leader retired with an empty queue; no group records linger.
        assert service._coalescer._groups == {}

    def test_uncontended_submit_pays_the_window_once(self, tiny_compressed):
        import time

        window = 0.05
        service = AnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=window),
        )
        service.submit(Query(task=Task.WORD_COUNT))  # warm the session
        start = time.monotonic()
        service.submit(Query(task=Task.SORT))
        elapsed = time.monotonic() - start
        assert elapsed < 2 * window  # one coalescing window, no post-drain wait

    def test_raw_corpus_memo_is_bounded(self):
        service = AnalyticsService(
            service_config=ServiceConfig(corpus_memo_capacity=2)
        )
        corpora = [
            Corpus.from_texts({"a.txt": f"alpha beta w{index} alpha"}) for index in range(4)
        ]
        for corpus in corpora:
            service.submit(Query(task=Task.WORD_COUNT), source=corpus)
        assert len(service._corpus_memo) <= 2


class TestServiceCaching:
    def test_repeated_query_hits_result_cache(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        first = service.submit(Query(task=Task.SORT, top_k=3))
        second = service.submit(Query(task=Task.SORT, top_k=3))
        assert first.details["result_cache"] == "miss"
        assert second.details["result_cache"] == "hit"
        assert second.result == first.result
        assert second.kernel_launches == 0
        stats = service.stats()
        assert stats.result_cache.hits == 1
        assert stats.executed_queries == 1 and stats.queries == 2

    def test_equal_queries_hit_regardless_of_construction(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        service.submit(Query(task="word_count", top_k=5, extras={"trace": 2, "tag": 1}))
        again = service.submit(
            Query(task=Task.WORD_COUNT, top_k=5, extras={"tag": 1, "trace": 2})
        )
        assert again.details["result_cache"] == "hit"

    def test_cache_hits_are_isolated_from_caller_mutation(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        query = Query(task=Task.WORD_COUNT)
        first = service.submit(query)
        pristine = dict(first.result)
        first.result["the"] = 10**9  # a badly behaved caller
        second = service.submit(query)
        assert second.details["result_cache"] == "hit"
        assert second.result == pristine
        second.result.clear()
        assert service.submit(query).result == pristine

    def test_misses_equal_executed_queries(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        for query in synthesize_trace(tiny_compressed.file_names, TraceConfig(num_requests=20)):
            service.submit(query)
        stats = service.stats()
        assert stats.result_cache.misses == stats.executed_queries
        assert stats.queries == stats.executed_queries + stats.result_cache.hits

    def test_cache_hits_do_not_touch_the_session_lru(
        self, tiny_compressed, single_file_compressed, few_files_compressed
    ):
        service = AnalyticsService(service_config=ServiceConfig(max_sessions=2))
        query = Query(task=Task.WORD_COUNT)
        service.submit(query, source=tiny_compressed)
        service.submit(query, source=single_file_compressed)
        service.submit(query, source=few_files_compressed)  # evicts tiny's session
        resident = set(service._sessions.keys())
        hit = service.submit(query, source=tiny_compressed)
        assert hit.details["result_cache"] == "hit"
        # The hit neither rebuilt tiny's session nor re-ranked the LRU.
        assert set(service._sessions.keys()) == resident
        assert service.stats().session_cache.misses == 3

    def test_session_lru_respects_bound(
        self, tiny_compressed, single_file_compressed, few_files_compressed
    ):
        service = AnalyticsService(service_config=ServiceConfig(max_sessions=2))
        for compressed in (tiny_compressed, single_file_compressed, few_files_compressed):
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
        assert service.resident_sessions == 2
        stats = service.stats()
        assert stats.session_cache.evictions == 1
        # The evicted corpus is still served correctly (state rebuilt).
        outcome = service.submit(Query(task=Task.SORT), source=tiny_compressed)
        serial = GTadocBackend(tiny_compressed, amortize=False).run(Query(task=Task.SORT))
        assert outcome.result == serial.result

    def test_engine_configs_key_separate_sessions(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        default = service.submit(Query(task=Task.SEQUENCE_COUNT))
        longer = service.submit(
            Query(task=Task.SEQUENCE_COUNT), engine_config=GTadocConfig(sequence_length=4)
        )
        assert service.resident_sessions == 2
        assert default.result != longer.result


class TestServiceInvalidation:
    def test_changed_corpus_never_serves_stale_results(self):
        before = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta alpha"}))
        after = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta gamma gamma"}))
        service = AnalyticsService()
        old = service.submit(Query(task=Task.WORD_COUNT), source=before)
        new = service.submit(Query(task=Task.WORD_COUNT), source=after)
        assert old.result == {"alpha": 2, "beta": 1}
        assert new.result == {"alpha": 1, "beta": 1, "gamma": 2}
        assert new.details["result_cache"] == "miss"

    def test_invalidate_drops_sessions_and_results(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        query = Query(task=Task.WORD_COUNT)
        first = service.submit(query)
        assert service.submit(query).details["result_cache"] == "hit"
        dropped = service.invalidate(tiny_compressed)
        assert dropped >= 2  # the session entry and the cached result
        assert service.resident_sessions == 0
        refreshed = service.submit(query)
        assert refreshed.details["result_cache"] == "miss"
        assert refreshed.result == first.result
        stats = service.stats()
        assert stats.session_cache.invalidations >= 1
        assert stats.result_cache.invalidations >= 1


# ----------------------------------------------------------------------------------------
# run_batch coalescing (a batch already in hand needs no window)
# ----------------------------------------------------------------------------------------

class TestRunBatchCoalescing:
    def test_batch_launches_strictly_fewer_kernels_than_serial_submits(self, tiny_compressed):
        """The acceptance criterion: grouping the Table II task mix beats
        the old submit-loop implementation on launches, not just batches."""
        mix = [Query(task=task) for task in Task.all()] + [
            Query(task=Task.SORT, top_k=3),
            Query(task=Task.WORD_COUNT, top_k=5),
            Query(task=Task.WORD_COUNT),
        ]
        grouped = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        serial = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        batch_outcomes = grouped.run_batch(mix)
        serial_outcomes = [serial.submit(query) for query in mix]
        assert grouped.stats().kernel_launches < serial.stats().kernel_launches
        assert grouped.stats().micro_batches < serial.stats().micro_batches
        for got, want in zip(batch_outcomes, serial_outcomes):
            assert results_equal(got.task, got.result, want.result)

    def test_batch_coalesces_even_with_the_result_cache_on(self, tiny_compressed):
        # Same task, different shaping: three distinct cache keys, but one
        # engine execution when grouped.
        mix = [Query(task=Task.SORT, top_k=k) for k in (2, 3, 4)]
        grouped = AnalyticsService(tiny_compressed)
        serial = AnalyticsService(tiny_compressed)
        grouped.run_batch(mix)
        for query in mix:
            serial.submit(query)
        assert grouped.stats().micro_batches == 1
        assert grouped.stats().kernel_launches < serial.stats().kernel_launches

    def test_batch_groups_by_compatibility_and_preserves_order(self, few_files_compressed):
        subset = (few_files_compressed.file_names[0],)
        mix = [
            Query(task=Task.WORD_COUNT),
            Query(task=Task.SEQUENCE_COUNT, sequence_length=4),
            Query(task=Task.INVERTED_INDEX, files=subset),
            Query(task=Task.SORT),
            Query(task=Task.SEQUENCE_COUNT, sequence_length=4, top_k=2),
        ]
        service = AnalyticsService(
            few_files_compressed, service_config=ServiceConfig(cache_results=False)
        )
        outcomes = service.run_batch(mix)
        assert [outcome.task for outcome in outcomes] == [query.task for query in mix]
        # Three compatibility groups: default knobs, sequence_length=4
        # (its two queries collapse to one engine execution), file subset.
        assert service.stats().micro_batches == 3
        serial = GTadocBackend(few_files_compressed, amortize=False)
        for query, outcome in zip(mix, outcomes):
            assert results_equal(query.task, outcome.result, serial.run(query).result)

    def test_batch_respects_max_batch_size(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, max_batch_size=2),
        )
        outcomes = service.run_batch([Query(task=task) for task in Task.all()])
        assert service.stats().micro_batches == 3  # six queries, chunks of two
        assert all(outcome.details["batch_size"] == 2 for outcome in outcomes)

    def test_batch_serves_repeats_from_the_result_cache(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        service.submit(Query(task=Task.SORT, top_k=3))
        outcomes = service.run_batch(
            [Query(task=Task.SORT, top_k=3), Query(task=Task.WORD_COUNT)]
        )
        assert outcomes[0].details["result_cache"] == "hit"
        assert outcomes[1].details["result_cache"] == "miss"

    def test_unknown_file_fails_before_any_execution(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        with pytest.raises(ValueError, match="unknown file"):
            service.run_batch(
                [Query(task=Task.WORD_COUNT), Query(task=Task.SORT, files=("missing.txt",))]
            )
        assert service.stats().micro_batches == 0

    def test_empty_batch_is_a_no_op(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        assert service.run_batch([]) == []
        assert service.stats().queries == 0


# ----------------------------------------------------------------------------------------
# Cross-query micro-batch fusion
# ----------------------------------------------------------------------------------------

class TestMicroBatchFusion:
    """``ServiceConfig.fuse_batches`` compiles a mixed-task micro-batch
    into one fused traversal pass: results stay bit-identical to plain
    coalesced batching while launching strictly fewer kernels."""

    MIX = [Query(task=task) for task in Task.all()] + [
        Query(task=Task.SORT, top_k=3),
        Query(task=Task.WORD_COUNT, top_k=5),
    ]

    def _service(self, compressed, fuse_batches):
        return AnalyticsService(
            compressed,
            service_config=ServiceConfig(cache_results=False, fuse_batches=fuse_batches),
        )

    def test_fused_results_bit_identical_to_unfused(self, tiny_compressed):
        fused = self._service(tiny_compressed, True).run_batch(self.MIX)
        unfused = self._service(tiny_compressed, False).run_batch(self.MIX)
        for got, want in zip(fused, unfused):
            assert got.result == want.result, got.query.describe()

    def test_fused_results_match_per_query_execution(self, tiny_compressed):
        serial = GTadocBackend(tiny_compressed)
        for outcome in self._service(tiny_compressed, True).run_batch(self.MIX):
            assert results_equal(
                outcome.task, outcome.result, serial.run(outcome.query).result
            ), outcome.query.describe()

    def test_fused_batches_launch_strictly_fewer_kernels(self, tiny_compressed):
        fused = self._service(tiny_compressed, True)
        unfused = self._service(tiny_compressed, False)
        fused.run_batch(self.MIX)
        unfused.run_batch(self.MIX)
        assert fused.stats().kernel_launches < unfused.stats().kernel_launches
        # Both route the same query stream into the same micro-batches.
        assert fused.stats().micro_batches == unfused.stats().micro_batches

    def test_mixed_task_batches_flag_fusion_in_details(self, tiny_compressed):
        outcomes = self._service(tiny_compressed, True).run_batch(self.MIX)
        assert all(outcome.details["fused"] for outcome in outcomes)

    def test_uniform_batches_do_not_fuse(self, tiny_compressed):
        # A single-task batch already collapses to one execution inside
        # run_batch; there is nothing to fuse across.
        mix = [Query(task=Task.SORT, top_k=k) for k in (2, 3)]
        outcomes = self._service(tiny_compressed, True).run_batch(mix)
        assert all(not outcome.details["fused"] for outcome in outcomes)

    def test_fusion_off_flags_every_batch_unfused(self, tiny_compressed):
        outcomes = self._service(tiny_compressed, False).run_batch(self.MIX)
        assert all(not outcome.details["fused"] for outcome in outcomes)


# ----------------------------------------------------------------------------------------
# The invalidate/in-flight race (epoch-guarded write-backs)
# ----------------------------------------------------------------------------------------

class TestInvalidateInflightRace:
    def test_inflight_result_is_not_resurrected_after_invalidate(self, tiny_compressed):
        executing = threading.Barrier(2)
        proceed = threading.Event()

        class BlockingService(AnalyticsService):
            def _execute_batch(self, entry, batch):
                if not proceed.is_set():      # only the staged execution blocks
                    executing.wait()  # announce: the miss is now executing
                    proceed.wait()    # hold until the invalidation has run
                super()._execute_batch(entry, batch)

        service = BlockingService(tiny_compressed)
        query = Query(task=Task.WORD_COUNT)
        outcomes = []
        worker = threading.Thread(target=lambda: outcomes.append(service.submit(query)))
        worker.start()
        executing.wait()
        dropped = service.invalidate(tiny_compressed)
        proceed.set()
        worker.join()
        # The in-flight query was answered (for the content it addressed)...
        assert outcomes and outcomes[0].result
        # ...but its write-back was dropped: the next identical query is a
        # miss, not a resurrected pre-invalidation entry.
        assert service.stats().result_cache.size == 0
        after = service.submit(query)
        assert after.details["result_cache"] == "miss"
        assert after.result == outcomes[0].result  # content never changed
        assert dropped >= 1  # the session entry created before the invalidate

    def test_stale_epoch_session_is_not_left_resident(self, tiny_compressed):
        reached = threading.Event()
        gate = threading.Event()

        class BlockingService(AnalyticsService):
            def _entry_for(self, prepared):
                if not reached.is_set():
                    reached.set()   # epoch already read in _prepare
                    gate.wait()     # invalidation runs before the session builds
                return super()._entry_for(prepared)

        service = BlockingService(tiny_compressed)
        outcomes = []
        worker = threading.Thread(
            target=lambda: outcomes.append(service.submit(Query(task=Task.WORD_COUNT)))
        )
        worker.start()
        reached.wait()
        service.invalidate(tiny_compressed)
        gate.set()
        worker.join()
        # The stale-epoch query was served, but the session it built under
        # the invalidated generation is not allowed to stay resident.
        assert outcomes and outcomes[0].result
        assert service.resident_sessions == 0

    def test_barrier_synchronized_submits_race_one_invalidate(self, tiny_compressed):
        """Stress shape: several threads' misses execute while the corpus is
        invalidated mid-flight; none may write back a stale entry."""
        num_workers = 4
        executing = threading.Barrier(num_workers + 1)
        proceed = threading.Event()

        class BlockingService(AnalyticsService):
            def _execute_batch(self, entry, batch):
                if not proceed.is_set():      # only the staged executions block
                    executing.wait()
                    proceed.wait()
                super()._execute_batch(entry, batch)

        # One coalescing group per task: distinct sequence lengths force
        # distinct micro-batches, so every worker blocks in _execute_batch.
        service = BlockingService(
            tiny_compressed, service_config=ServiceConfig(coalesce_window=0.0)
        )
        queries = [
            Query(task=Task.SEQUENCE_COUNT, sequence_length=length)
            for length in range(2, 2 + num_workers)
        ]
        errors = []

        def worker(query: Query) -> None:
            try:
                service.submit(query)
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(query,)) for query in queries]
        for thread in threads:
            thread.start()
        executing.wait()  # all four micro-batches are in flight
        service.invalidate(tiny_compressed)
        proceed.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.stats().result_cache.size == 0
        assert service.resident_sessions == 0
        # Post-invalidation traffic rebuilds and caches normally again.
        refreshed = service.submit(queries[0])
        assert refreshed.details["result_cache"] == "miss"
        assert service.submit(queries[0]).details["result_cache"] == "hit"


# ----------------------------------------------------------------------------------------
# Result-cache byte budget and TTL through ServiceConfig
# ----------------------------------------------------------------------------------------

class TestServiceResultCachePolicy:
    def test_byte_budget_keeps_oversized_results_out(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(result_cache_bytes=1)
        )
        service.submit(Query(task=Task.WORD_COUNT))
        again = service.submit(Query(task=Task.WORD_COUNT))
        assert again.details["result_cache"] == "miss"  # nothing fits the budget
        stats = service.stats().result_cache
        assert stats.weight_capacity == 1
        assert stats.size == 0

    def test_byte_budget_bounds_resident_weight(self, tiny_compressed):
        budget = 64 * 1024
        service = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(result_cache_bytes=budget)
        )
        for query in synthesize_trace(tiny_compressed.file_names, TraceConfig(num_requests=24)):
            service.submit(query)
        stats = service.stats().result_cache
        assert 0 < stats.weight_bytes <= budget

    def test_entries_are_weighed_by_result_size(self, few_files_compressed):
        service = AnalyticsService(
            few_files_compressed,
            service_config=ServiceConfig(result_cache_bytes=10**9),
        )
        service.submit(Query(task=Task.SORT, top_k=1))
        small = service.stats().result_cache.weight_bytes
        service.submit(Query(task=Task.INVERTED_INDEX))
        assert service.stats().result_cache.weight_bytes > small * 2

    def test_weighing_is_skipped_without_a_budget(self, tiny_compressed):
        # The default (unweighted) cache must not pay the deep result
        # walk: entries carry unit weight.
        service = AnalyticsService(tiny_compressed)
        service.submit(Query(task=Task.INVERTED_INDEX))
        stats = service.stats().result_cache
        assert stats.weight_capacity is None
        assert stats.weight_bytes == stats.size == 1

    def test_ttl_expires_cached_results(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(result_cache_ttl=60.0)
        )
        assert service.stats().result_cache.ttl == 60.0
        # Swap in a fake clock so the test does not sleep.
        now = [0.0]
        service._results = LRUCache(8, ttl=1.0, clock=lambda: now[0])
        service.submit(Query(task=Task.SORT))
        assert service.submit(Query(task=Task.SORT)).details["result_cache"] == "hit"
        now[0] = 5.0
        assert service.submit(Query(task=Task.SORT)).details["result_cache"] == "miss"
        assert service.stats().result_cache.expirations == 1

    def test_bad_policy_values_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(result_cache_bytes=0)
        with pytest.raises(ValueError):
            ServiceConfig(result_cache_ttl=0.0)


# ----------------------------------------------------------------------------------------
# The serving layer behind the backend registry
# ----------------------------------------------------------------------------------------

class TestServeBackend:
    def test_open_backend_returns_a_service(self, tiny_compressed):
        backend = open_backend("serve", tiny_compressed)
        assert isinstance(backend, AnalyticsService)
        capabilities = backend.capabilities()
        assert capabilities.amortizes_batches and capabilities.compressed_domain

    def test_serve_accepts_raw_corpus(self, tiny_corpus, tiny_compressed):
        backend = open_backend("serve", tiny_corpus)
        outcome = backend.run(Query(task=Task.WORD_COUNT))
        serial = GTadocBackend(tiny_compressed, amortize=False).run(Query(task=Task.WORD_COUNT))
        assert outcome.result == serial.result
