"""Serving-layer tests: caches, coalescing, concurrency, invalidation.

The centrepiece is the concurrency suite: N worker threads submitting
mixed queries through :class:`~repro.serve.AnalyticsService` must
produce results bit-identical to serial per-query execution while
launching strictly fewer kernels per query; the session LRU must respect
its bound; and the result cache must never serve stale results across a
corpus change.
"""

from __future__ import annotations

import threading

import pytest

from repro.analytics.base import Task
from repro.api import Query, open_backend
from repro.api.backends import GTadocBackend
from repro.compression.compressor import compress_corpus
from repro.core.engine import GTadoc
from repro.core.session import (
    FILE_WEIGHTS,
    LOCAL_TABLES,
    RULE_WEIGHTS,
    DeviceSession,
    GTadocConfig,
)
from repro.core.strategy import TraversalStrategy
from repro.data.corpus import Corpus
from repro.serve import (
    AnalyticsService,
    LRUCache,
    ServiceConfig,
    TraceConfig,
    replay_trace,
    synthesize_trace,
)

NUM_THREADS = 8


# ----------------------------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------------------------

class TestLRUCache:
    def test_capacity_bound_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_stats_count_hits_misses_evictions_invalidations(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.put("b", 2)  # evicts "a"
        cache.remove_where(lambda key: key == "b")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.evictions == 1 and stats.invalidations == 1
        assert stats.hit_rate == 0.5
        assert stats.size == 0 and stats.capacity == 1

    def test_get_or_create_builds_once_under_concurrency(self):
        cache = LRUCache(4)
        builds = []
        barrier = threading.Barrier(NUM_THREADS)
        values = []

        def worker() -> None:
            barrier.wait()
            value, _created = cache.get_or_create("key", lambda: builds.append(1) or object())
            values.append(value)

        threads = [threading.Thread(target=worker) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert all(value is values[0] for value in values)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


# ----------------------------------------------------------------------------------------
# Corpus fingerprints (the session/result cache key)
# ----------------------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_recompression(self, tiny_corpus):
        assert (
            compress_corpus(tiny_corpus).fingerprint()
            == compress_corpus(tiny_corpus).fingerprint()
        )

    def test_content_change_changes_fingerprint(self):
        before = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta alpha"}))
        after = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta gamma"}))
        assert before.fingerprint() != after.fingerprint()

    def test_display_name_does_not_participate(self):
        texts = {"a.txt": "alpha beta alpha beta"}
        one = compress_corpus(Corpus.from_texts(texts, name="first"))
        two = compress_corpus(Corpus.from_texts(texts, name="second"))
        assert one.fingerprint() == two.fingerprint()


# ----------------------------------------------------------------------------------------
# DeviceSession thread safety
# ----------------------------------------------------------------------------------------

class TestSessionThreadSafety:
    def test_concurrent_state_builds_happen_once(self, tiny_compressed):
        session = DeviceSession(tiny_compressed)
        barrier = threading.Barrier(NUM_THREADS)
        seen = []

        def worker(index: int) -> None:
            barrier.wait()
            key = (RULE_WEIGHTS, LOCAL_TABLES, FILE_WEIGHTS)[index % 3]
            seen.append((key, id(session.state(key))))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread asking for a key got the same built object.
        by_key = {}
        for key, identity in seen:
            by_key.setdefault(key, set()).add(identity)
        assert all(len(identities) == 1 for identities in by_key.values())
        # One drain collects all construction work; a second finds none.
        init_record, shared_record = session.drain_new_records()
        assert shared_record.num_launches > 0
        init_again, shared_again = session.drain_new_records()
        assert init_again.num_launches == 0 and shared_again.num_launches == 0

    def test_concurrent_batches_serialize_and_charge_init_once(self, tiny_compressed):
        engine = GTadoc(tiny_compressed)
        batches = []

        def worker() -> None:
            batches.append(engine.run_batch([Task.WORD_COUNT, Task.SORT]))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = GTadoc(tiny_compressed).run_batch([Task.WORD_COUNT, Task.SORT])
        shared_total = sum(batch.shared_kernel_launches for batch in batches)
        assert shared_total == reference.shared_kernel_launches
        for batch in batches:
            assert batch[Task.WORD_COUNT].result == reference[Task.WORD_COUNT].result
            assert batch[Task.SORT].result == reference[Task.SORT].result


# ----------------------------------------------------------------------------------------
# Batch-level shared figures (run_batch attribution bugfix)
# ----------------------------------------------------------------------------------------

class TestBatchSharedFigures:
    def test_batch_reports_scheduler_summary_once(self, tiny_compressed):
        engine = GTadoc(tiny_compressed)
        batch = engine.run_batch([Task.WORD_COUNT, Task.SORT])
        assert batch.scheduler_summary["rules"] == engine.layout.num_rules
        for result in batch.values():
            assert result.scheduler_summary == {}

    def test_single_run_keeps_its_own_summary(self, tiny_compressed):
        outcome = GTadoc(tiny_compressed).run(Task.WORD_COUNT)
        assert outcome.scheduler_summary["rules"] > 0

    def test_non_config_sequence_length_pool_delta_is_marginal(self, few_files_compressed):
        engine = GTadoc(few_files_compressed)
        engine.run_batch([Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP)
        batch = engine.run_batch([Task.SEQUENCE_COUNT], sequence_length=5)
        assert batch[Task.SEQUENCE_COUNT].memory_pool_bytes > 0
        pool = engine.session.memory_pool
        assert pool is not None and pool.check_no_overlap()
        assert batch.memory_pool_bytes == pool.used_bytes

    def test_off_config_lengths_do_not_starve_local_tables(self, many_files_compressed):
        # An off-config sequence length must bring its own pool capacity:
        # the local-table budget has to survive for a later bottom-up task.
        engine = GTadoc(many_files_compressed)
        engine.run_batch([Task.SEQUENCE_COUNT], sequence_length=20)
        batch = engine.run_batch([Task.WORD_COUNT], traversal=TraversalStrategy.BOTTOM_UP)
        reference = GTadoc(many_files_compressed).run(
            Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP
        )
        assert batch[Task.WORD_COUNT].result == reference.result
        assert engine.session.memory_pool.check_no_overlap()


# ----------------------------------------------------------------------------------------
# AnalyticsService: the concurrency suite
# ----------------------------------------------------------------------------------------

class TestServiceConcurrency:
    def test_mixed_concurrent_queries_bit_identical_to_serial(self, few_files_compressed):
        trace = synthesize_trace(
            few_files_compressed.file_names, TraceConfig(num_requests=32, seed=5)
        )
        report = replay_trace(few_files_compressed, trace, num_threads=NUM_THREADS)
        assert report.results_match
        # The acceptance criterion: strictly fewer kernel launches per
        # query than serial per-query run() execution.
        assert report.stats.kernel_launches < report.serial_launches
        assert report.served_launches_per_query < report.serial_launches_per_query

    def test_simultaneous_compatible_queries_coalesce(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=0.05),
        )
        tasks = Task.all()
        barrier = threading.Barrier(len(tasks))
        outcomes = {}

        def worker(task: Task) -> None:
            barrier.wait()
            outcomes[task] = service.submit(Query(task=task))

        threads = [threading.Thread(target=worker, args=(task,)) for task in tasks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()
        assert stats.executed_queries == len(tasks)
        assert stats.micro_batches < len(tasks)
        assert stats.coalesced_queries >= 2
        assert any(outcome.details["batch_size"] > 1 for outcome in outcomes.values())

    def test_error_reaches_only_the_offending_caller(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        with pytest.raises(ValueError, match="unknown file"):
            service.submit(Query(task=Task.WORD_COUNT, files=("missing.txt",)))
        outcome = service.submit(Query(task=Task.WORD_COUNT))
        assert outcome.result

    def test_rejected_queries_do_not_skew_stats(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        for _ in range(3):
            with pytest.raises(ValueError):
                service.submit(Query(task=Task.WORD_COUNT, files=("missing.txt",)))
        service.submit(Query(task=Task.WORD_COUNT))
        stats = service.stats()
        assert stats.queries == 1
        assert stats.result_cache.misses == 1
        assert stats.queries == stats.executed_queries + stats.result_cache.hits

    def test_idle_coalescing_groups_are_dropped(self, tiny_compressed):
        service = AnalyticsService(
            tiny_compressed, service_config=ServiceConfig(cache_results=False)
        )
        for task in (Task.WORD_COUNT, Task.SORT):
            service.submit(Query(task=task))
        service.submit(Query(task=Task.SEQUENCE_COUNT, sequence_length=4))
        # Every leader retired with an empty queue; no group records linger.
        assert service._coalescer._groups == {}

    def test_uncontended_submit_pays_the_window_once(self, tiny_compressed):
        import time

        window = 0.05
        service = AnalyticsService(
            tiny_compressed,
            service_config=ServiceConfig(cache_results=False, coalesce_window=window),
        )
        service.submit(Query(task=Task.WORD_COUNT))  # warm the session
        start = time.monotonic()
        service.submit(Query(task=Task.SORT))
        elapsed = time.monotonic() - start
        assert elapsed < 2 * window  # one coalescing window, no post-drain wait

    def test_raw_corpus_memo_is_bounded(self):
        service = AnalyticsService(
            service_config=ServiceConfig(corpus_memo_capacity=2)
        )
        corpora = [
            Corpus.from_texts({"a.txt": f"alpha beta w{index} alpha"}) for index in range(4)
        ]
        for corpus in corpora:
            service.submit(Query(task=Task.WORD_COUNT), source=corpus)
        assert len(service._compressed_by_corpus) <= 2


class TestServiceCaching:
    def test_repeated_query_hits_result_cache(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        first = service.submit(Query(task=Task.SORT, top_k=3))
        second = service.submit(Query(task=Task.SORT, top_k=3))
        assert first.details["result_cache"] == "miss"
        assert second.details["result_cache"] == "hit"
        assert second.result == first.result
        assert second.kernel_launches == 0
        stats = service.stats()
        assert stats.result_cache.hits == 1
        assert stats.executed_queries == 1 and stats.queries == 2

    def test_equal_queries_hit_regardless_of_construction(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        service.submit(Query(task="word_count", top_k=5, extras={"b": 2, "a": 1}))
        again = service.submit(
            Query(task=Task.WORD_COUNT, top_k=5, extras={"a": 1, "b": 2})
        )
        assert again.details["result_cache"] == "hit"

    def test_cache_hits_are_isolated_from_caller_mutation(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        query = Query(task=Task.WORD_COUNT)
        first = service.submit(query)
        pristine = dict(first.result)
        first.result["the"] = 10**9  # a badly behaved caller
        second = service.submit(query)
        assert second.details["result_cache"] == "hit"
        assert second.result == pristine
        second.result.clear()
        assert service.submit(query).result == pristine

    def test_misses_equal_executed_queries(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        for query in synthesize_trace(tiny_compressed.file_names, TraceConfig(num_requests=20)):
            service.submit(query)
        stats = service.stats()
        assert stats.result_cache.misses == stats.executed_queries
        assert stats.queries == stats.executed_queries + stats.result_cache.hits

    def test_cache_hits_do_not_touch_the_session_lru(
        self, tiny_compressed, single_file_compressed, few_files_compressed
    ):
        service = AnalyticsService(service_config=ServiceConfig(max_sessions=2))
        query = Query(task=Task.WORD_COUNT)
        service.submit(query, source=tiny_compressed)
        service.submit(query, source=single_file_compressed)
        service.submit(query, source=few_files_compressed)  # evicts tiny's session
        resident = set(service._sessions.keys())
        hit = service.submit(query, source=tiny_compressed)
        assert hit.details["result_cache"] == "hit"
        # The hit neither rebuilt tiny's session nor re-ranked the LRU.
        assert set(service._sessions.keys()) == resident
        assert service.stats().session_cache.misses == 3

    def test_session_lru_respects_bound(
        self, tiny_compressed, single_file_compressed, few_files_compressed
    ):
        service = AnalyticsService(service_config=ServiceConfig(max_sessions=2))
        for compressed in (tiny_compressed, single_file_compressed, few_files_compressed):
            service.submit(Query(task=Task.WORD_COUNT), source=compressed)
        assert service.resident_sessions == 2
        stats = service.stats()
        assert stats.session_cache.evictions == 1
        # The evicted corpus is still served correctly (state rebuilt).
        outcome = service.submit(Query(task=Task.SORT), source=tiny_compressed)
        serial = GTadocBackend(tiny_compressed, amortize=False).run(Query(task=Task.SORT))
        assert outcome.result == serial.result

    def test_engine_configs_key_separate_sessions(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        default = service.submit(Query(task=Task.SEQUENCE_COUNT))
        longer = service.submit(
            Query(task=Task.SEQUENCE_COUNT), engine_config=GTadocConfig(sequence_length=4)
        )
        assert service.resident_sessions == 2
        assert default.result != longer.result


class TestServiceInvalidation:
    def test_changed_corpus_never_serves_stale_results(self):
        before = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta alpha"}))
        after = compress_corpus(Corpus.from_texts({"a.txt": "alpha beta gamma gamma"}))
        service = AnalyticsService()
        old = service.submit(Query(task=Task.WORD_COUNT), source=before)
        new = service.submit(Query(task=Task.WORD_COUNT), source=after)
        assert old.result == {"alpha": 2, "beta": 1}
        assert new.result == {"alpha": 1, "beta": 1, "gamma": 2}
        assert new.details["result_cache"] == "miss"

    def test_invalidate_drops_sessions_and_results(self, tiny_compressed):
        service = AnalyticsService(tiny_compressed)
        query = Query(task=Task.WORD_COUNT)
        first = service.submit(query)
        assert service.submit(query).details["result_cache"] == "hit"
        dropped = service.invalidate(tiny_compressed)
        assert dropped >= 2  # the session entry and the cached result
        assert service.resident_sessions == 0
        refreshed = service.submit(query)
        assert refreshed.details["result_cache"] == "miss"
        assert refreshed.result == first.result
        stats = service.stats()
        assert stats.session_cache.invalidations >= 1
        assert stats.result_cache.invalidations >= 1


# ----------------------------------------------------------------------------------------
# The serving layer behind the backend registry
# ----------------------------------------------------------------------------------------

class TestServeBackend:
    def test_open_backend_returns_a_service(self, tiny_compressed):
        backend = open_backend("serve", tiny_compressed)
        assert isinstance(backend, AnalyticsService)
        capabilities = backend.capabilities()
        assert capabilities.amortizes_batches and capabilities.compressed_domain

    def test_serve_accepts_raw_corpus(self, tiny_corpus, tiny_compressed):
        backend = open_backend("serve", tiny_corpus)
        outcome = backend.run(Query(task=Task.WORD_COUNT))
        serial = GTadocBackend(tiny_compressed, amortize=False).run(Query(task=Task.WORD_COUNT))
        assert outcome.result == serial.result
