"""Shared fixtures for the test suite.

Corpora and their compressed forms are expensive to build relative to a
single assertion, so they are session-scoped; tests must not mutate
them.
"""

from __future__ import annotations

import pytest

from repro.analytics.reference import UncompressedAnalytics
from repro.compression.compressor import compress_corpus
from repro.data.corpus import Corpus, Document
from repro.data.generators import generate_dataset


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A small hand-written corpus with heavy phrase repetition."""
    texts = {
        "doc_a.txt": (
            "the quick brown fox jumps over the lazy dog "
            "the quick brown fox jumps over the lazy dog "
            "grammar compression folds repeated phrases into rules"
        ),
        "doc_b.txt": (
            "text analytics directly on compression avoids decompression "
            "the quick brown fox jumps over the lazy dog once more"
        ),
        "doc_c.txt": (
            "grammar compression folds repeated phrases into rules "
            "text analytics directly on compression avoids decompression"
        ),
    }
    return Corpus.from_texts(texts, name="tiny")


@pytest.fixture(scope="session")
def single_file_corpus() -> Corpus:
    """One file only — exercises the no-splitter path."""
    text = "alpha beta gamma alpha beta gamma alpha beta delta epsilon alpha beta gamma"
    return Corpus([Document("only.txt", text)], name="single")


@pytest.fixture(scope="session")
def many_files_corpus() -> Corpus:
    """The dataset A analogue at a very small scale (many tiny files)."""
    return generate_dataset("A", scale=0.05, seed=7)


@pytest.fixture(scope="session")
def few_files_corpus() -> Corpus:
    """The dataset B analogue at a very small scale (a few larger files)."""
    return generate_dataset("B", scale=0.04, seed=7)


@pytest.fixture(scope="session")
def tiny_compressed(tiny_corpus):
    return compress_corpus(tiny_corpus)


@pytest.fixture(scope="session")
def single_file_compressed(single_file_corpus):
    return compress_corpus(single_file_corpus)


@pytest.fixture(scope="session")
def many_files_compressed(many_files_corpus):
    return compress_corpus(many_files_corpus)


@pytest.fixture(scope="session")
def few_files_compressed(few_files_corpus):
    return compress_corpus(few_files_corpus)


@pytest.fixture(scope="session")
def tiny_reference(tiny_corpus) -> UncompressedAnalytics:
    return UncompressedAnalytics(tiny_corpus)


@pytest.fixture(scope="session")
def many_files_reference(many_files_corpus) -> UncompressedAnalytics:
    return UncompressedAnalytics(many_files_corpus)


@pytest.fixture(scope="session")
def few_files_reference(few_files_corpus) -> UncompressedAnalytics:
    return UncompressedAnalytics(few_files_corpus)
