"""Tests for the synthetic dataset generators (Table II analogues)."""

from __future__ import annotations

import pytest

from repro.data.generators import (
    DATASET_SPECS,
    SyntheticCorpusGenerator,
    generate_dataset,
    list_datasets,
)


class TestSpecs:
    def test_all_five_datasets_present(self):
        assert list_datasets() == ["A", "B", "C", "D", "E"]

    def test_paper_metadata_matches_table2(self):
        assert DATASET_SPECS["A"].paper_files == 134_631
        assert DATASET_SPECS["B"].paper_rules == 2_095_573
        assert DATASET_SPECS["C"].paper_size == "50GB"
        assert DATASET_SPECS["D"].paper_vocabulary == 240_552
        assert DATASET_SPECS["E"].paper_rules == 8_821_630

    def test_only_dataset_c_uses_cluster_baseline(self):
        assert [key for key, spec in DATASET_SPECS.items() if spec.cluster_baseline] == ["C"]

    def test_file_count_signatures(self):
        assert DATASET_SPECS["A"].num_files > 100
        assert DATASET_SPECS["B"].num_files == 4
        assert DATASET_SPECS["D"].num_files == 1
        assert DATASET_SPECS["E"].num_files == 1

    def test_scaled_reduces_many_file_dataset_by_count(self):
        scaled = DATASET_SPECS["A"].scaled(0.1)
        assert scaled.num_files < DATASET_SPECS["A"].num_files
        assert scaled.tokens_per_file == DATASET_SPECS["A"].tokens_per_file

    def test_scaled_reduces_few_file_dataset_by_length(self):
        scaled = DATASET_SPECS["B"].scaled(0.1)
        assert scaled.num_files == 4
        assert scaled.tokens_per_file < DATASET_SPECS["B"].tokens_per_file

    def test_scaled_identity(self):
        assert DATASET_SPECS["C"].scaled(1.0) is DATASET_SPECS["C"]


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        first = generate_dataset("D", scale=0.1, seed=11)
        second = generate_dataset("D", scale=0.1, seed=11)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_dataset("D", scale=0.1, seed=11)
        second = generate_dataset("D", scale=0.1, seed=12)
        assert first != second

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            generate_dataset("Z")

    def test_file_counts_respect_spec(self):
        corpus = generate_dataset("B", scale=0.05)
        assert len(corpus) == 4
        corpus_single = generate_dataset("E", scale=0.02)
        assert len(corpus_single) == 1

    def test_scale_controls_token_volume(self):
        small = generate_dataset("D", scale=0.05)
        large = generate_dataset("D", scale=0.2)
        assert large.num_tokens > small.num_tokens

    def test_redundancy_produces_repeated_phrases(self):
        corpus = generate_dataset("E", scale=0.05)
        vocabulary = corpus.vocabulary
        # Heavy reuse means far fewer distinct words than tokens.
        assert len(vocabulary) < corpus.num_tokens / 3

    def test_spec_override(self):
        spec = DATASET_SPECS["D"].scaled(0.05)
        corpus = generate_dataset("D", spec_override=spec)
        assert len(corpus) == spec.num_files

    def test_generator_document_names_are_unique(self):
        corpus = generate_dataset("A", scale=0.05)
        names = corpus.file_names
        assert len(names) == len(set(names))

    def test_generator_respects_minimum_sizes(self):
        generator = SyntheticCorpusGenerator(DATASET_SPECS["D"].scaled(0.01))
        corpus = generator.generate()
        assert all(doc.num_tokens >= 16 for doc in corpus)
