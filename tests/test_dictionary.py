"""Tests for dictionary conversion (words and splitters to integer ids)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.compression.dictionary import Dictionary


class TestWordEncoding:
    def test_first_word_gets_id_zero(self):
        dictionary = Dictionary()
        assert dictionary.encode_word("alpha") == 0

    def test_same_word_same_id(self):
        dictionary = Dictionary()
        assert dictionary.encode_word("alpha") == dictionary.encode_word("alpha")

    def test_distinct_words_distinct_ids(self):
        dictionary = Dictionary()
        ids = {dictionary.encode_word(word) for word in ["a", "b", "c", "a", "b"]}
        assert ids == {0, 1, 2}

    def test_encode_tokens_preserves_order(self):
        dictionary = Dictionary()
        assert dictionary.encode_tokens(["x", "y", "x"]) == [0, 1, 0]

    def test_lookup_does_not_register(self):
        dictionary = Dictionary()
        with pytest.raises(KeyError):
            dictionary.lookup("absent")

    def test_contains(self):
        dictionary = Dictionary()
        dictionary.encode_word("present")
        assert "present" in dictionary
        assert "absent" not in dictionary

    def test_decode_inverse_of_encode(self):
        dictionary = Dictionary()
        words = ["alpha", "beta", "gamma"]
        ids = dictionary.encode_tokens(words)
        assert dictionary.decode_tokens(ids) == words

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5), min_size=1, max_size=50))
    def test_encode_decode_roundtrip(self, words):
        dictionary = Dictionary()
        ids = dictionary.encode_tokens(words)
        assert dictionary.decode_tokens(ids) == words


class TestSplitters:
    def test_splitter_ids_follow_words(self):
        dictionary = Dictionary()
        dictionary.encode_tokens(["a", "b"])
        splitters = dictionary.allocate_splitters(3)
        assert splitters == [2, 3, 4]

    def test_is_splitter(self):
        dictionary = Dictionary()
        dictionary.encode_word("a")
        (splitter,) = dictionary.allocate_splitters(1)
        assert dictionary.is_splitter(splitter)
        assert not dictionary.is_splitter(0)

    def test_num_words_excludes_splitters(self):
        dictionary = Dictionary()
        dictionary.encode_tokens(["a", "b", "c"])
        dictionary.allocate_splitters(2)
        assert dictionary.num_words == 3
        assert dictionary.num_splitters == 2
        assert dictionary.num_symbols == 5

    def test_new_words_after_splitters_rejected(self):
        dictionary = Dictionary()
        dictionary.encode_word("a")
        dictionary.allocate_splitters(1)
        with pytest.raises(ValueError):
            dictionary.encode_word("new")

    def test_existing_word_lookup_after_splitters_ok(self):
        dictionary = Dictionary()
        dictionary.encode_word("a")
        dictionary.allocate_splitters(1)
        assert dictionary.encode_word("a") == 0

    def test_double_allocation_rejected(self):
        dictionary = Dictionary()
        dictionary.allocate_splitters(1)
        with pytest.raises(ValueError):
            dictionary.allocate_splitters(1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Dictionary().allocate_splitters(-1)

    def test_zero_splitters_allowed(self):
        dictionary = Dictionary()
        dictionary.encode_word("a")
        assert dictionary.allocate_splitters(0) == []


class TestSerialization:
    def test_to_from_dict_roundtrip(self):
        dictionary = Dictionary()
        dictionary.encode_tokens(["a", "b", "c"])
        dictionary.allocate_splitters(2)
        restored = Dictionary.from_dict(dictionary.to_dict())
        assert restored == dictionary

    def test_equality_considers_splitters(self):
        left = Dictionary()
        left.encode_word("a")
        left.allocate_splitters(1)
        right = Dictionary()
        right.encode_word("a")
        right.allocate_splitters(2)
        assert left != right
