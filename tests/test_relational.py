"""Tests for the compressed-domain relational subsystem.

The relational plan family treats every corpus file as one typed row
and executes SELECT-style queries (filter / group-by / aggregate)
directly on the grammar.  The contracts under test:

* spec validation fails at construction, and every spec is hashable;
* row parsing agrees between the token-scan path and the grammar path;
* scalar and vector kernel modes are bit-identical — results, kernel
  launches, per-kernel stats and modelled ops;
* parse states memoize per schema: a warm query launches strictly
  fewer kernels (exactly filter + aggregate) than a cold one;
* fused batches answer identically to unfused ones;
* every registered backend answers identically, and the serving layer
  caches/coalesces relational queries like any other task.
"""

from __future__ import annotations

import pytest

from repro.analytics.base import Task
from repro.api import Query, available_backends, open_backend
from repro.compression.compressor import compress_corpus
from repro.core.engine import GTadoc
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.relational import compute as rc
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)

# One delimited record per file; row 'frank' has an unparseable age, so
# typed parsing (and its None-excludes-row semantics) is exercised.
ROWS = (
    ("alice", "30", "nyc"),
    ("bob", "25", "sfo"),
    ("carol", "41", "chi"),
    ("dave", "30", "nyc"),
    ("erin", "29", "chi"),
    ("frank", "oops", "nyc"),
)


@pytest.fixture(scope="module")
def rel_corpus() -> Corpus:
    texts = {
        f"row_{index}.txt": f"{name} , {age} , {city}"
        for index, (name, age, city) in enumerate(ROWS)
    }
    return Corpus.from_texts(texts, name="relational-tiny")


@pytest.fixture(scope="module")
def rel_compressed(rel_corpus):
    return compress_corpus(rel_corpus)


@pytest.fixture(scope="module")
def schema() -> RowSchema:
    return RowSchema(
        fields=(
            FieldSpec("name", "str", column=0),
            FieldSpec("age", "int", column=1),
            FieldSpec("city", "str", column=2),
        ),
        delimiter=",",
    )


@pytest.fixture(scope="module")
def spec(schema) -> RelationalQuery:
    return RelationalQuery(
        schema=schema,
        predicate=(Condition("age", "ge", 29),),
        group_by="city",
        aggregates=(Aggregate("count"), Aggregate("avg", "age")),
    )


def rel_query(spec: RelationalQuery, **kwargs) -> Query:
    return Query(task=Task.RELATIONAL, extras={"relational": spec}, **kwargs)


# ----------------------------------------------------------------------------------------
# Spec validation (everything fails at construction, everything hashes)
# ----------------------------------------------------------------------------------------

class TestSpecValidation:
    def test_field_needs_exactly_one_locator(self):
        with pytest.raises(ValueError, match="exactly one of column/key"):
            FieldSpec("x", "str")
        with pytest.raises(ValueError, match="exactly one of column/key"):
            FieldSpec("x", "str", column=0, key="k")

    def test_field_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="type must be one of"):
            FieldSpec("x", "bool", column=0)

    def test_schema_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate field names"):
            RowSchema(
                fields=(FieldSpec("x", column=0), FieldSpec("x", column=1)),
                delimiter=",",
            )

    def test_delimited_schema_requires_columns(self):
        with pytest.raises(ValueError, match="column addressing"):
            RowSchema(fields=(FieldSpec("x", key="k"),), delimiter=",")

    def test_keyed_schema_requires_keys(self):
        with pytest.raises(ValueError, match="key addressing"):
            RowSchema(fields=(FieldSpec("x", column=0),))

    def test_condition_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op must be one of"):
            Condition("x", "like", "a")

    def test_numeric_aggregate_needs_numeric_field(self, schema):
        with pytest.raises(ValueError, match="needs a numeric field"):
            RelationalQuery(
                schema=schema, aggregates=(Aggregate("sum", "city"),)
            )

    def test_count_takes_no_field(self):
        with pytest.raises(ValueError, match="count takes no field"):
            Aggregate("count", "age")

    def test_predicate_fields_must_exist(self, schema):
        with pytest.raises(KeyError, match="no field"):
            RelationalQuery(schema=schema, predicate=(Condition("zip", "eq", 1),))

    def test_order_by_must_name_an_aggregate(self, schema):
        with pytest.raises(ValueError, match="does not name an aggregate"):
            RelationalQuery(schema=schema, order_by="sum(age)")

    def test_specs_are_hashable_cache_keys(self, spec, schema):
        other = RelationalQuery(schema=schema, group_by="city")
        assert len({spec, spec, other}) == 2
        assert hash(rel_query(spec)) == hash(rel_query(spec))


# ----------------------------------------------------------------------------------------
# Row parsing (token-scan path; the grammar path is matrix-tested below)
# ----------------------------------------------------------------------------------------

class TestRowParsing:
    def test_delimited_row(self, schema):
        row = rc.row_from_tokens("alice , 30 , nyc".split(), schema)
        assert row == ("alice", 30, "nyc")

    def test_parse_failure_yields_none(self, schema):
        row = rc.row_from_tokens("frank , oops , nyc".split(), schema)
        assert row == ("frank", None, "nyc")

    def test_missing_column_yields_none(self, schema):
        assert rc.row_from_tokens("only".split(), schema) == ("only", None, None)

    def test_keyed_row(self):
        keyed = RowSchema(
            fields=(FieldSpec("level", key="level"), FieldSpec("code", "int", key="code"))
        )
        row = rc.row_from_tokens("ts level error code 500 done".split(), keyed)
        assert row == ("error", 500)

    def test_none_never_matches_conditions(self, schema):
        row = rc.row_from_tokens("frank , oops , nyc".split(), schema)
        age = row[schema.field_index("age")]
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert not rc.condition_matches(age, Condition("age", op, 30))


# ----------------------------------------------------------------------------------------
# Query-object integration
# ----------------------------------------------------------------------------------------

class TestRelationalQueryObject:
    def test_relational_task_requires_spec(self):
        with pytest.raises(ValueError, match="relational"):
            Query(task=Task.RELATIONAL)

    def test_spec_must_be_a_relational_query(self):
        with pytest.raises(ValueError, match="RelationalQuery"):
            Query(task=Task.RELATIONAL, extras={"relational": "select *"})

    def test_terms_filter_rejected(self, spec):
        with pytest.raises(ValueError, match="terms"):
            rel_query(spec, terms=("nyc",))

    def test_sequence_length_rejected(self, spec):
        with pytest.raises(ValueError, match="sequence_length"):
            rel_query(spec, sequence_length=3)

    def test_relational_property(self, spec):
        assert rel_query(spec).relational is spec
        assert Query(task=Task.SORT).relational is None

    def test_classic_tasks_reject_the_relational_key(self, spec):
        with pytest.raises(ValueError, match="unknown extras"):
            Query(task=Task.SORT, extras={"relational": spec})


# ----------------------------------------------------------------------------------------
# Kernel modes: scalar vs vector bit-identity, cold and warm
# ----------------------------------------------------------------------------------------

def _kernel_signature(record):
    return [
        (
            k.name,
            k.num_threads,
            k.num_warps,
            k.warp_serial_ops,
            k.total_thread_ops,
            k.memory_bytes,
            k.shared_memory_bytes,
            k.atomic_ops,
            k.atomic_conflicts,
        )
        for k in record.kernels
    ]


class TestKernelModes:
    def test_scalar_and_vector_are_bit_identical(self, rel_compressed, spec):
        outcomes = {}
        for mode in ("scalar", "vector"):
            engine = GTadoc(rel_compressed, GTadocConfig(kernel_mode=mode))
            cold = engine.run_batch([Task.RELATIONAL], relational=spec)
            warm = engine.run_batch([Task.RELATIONAL], relational=spec)
            outcomes[mode] = (cold, warm)
        for phase in (0, 1):
            s, v = outcomes["scalar"][phase], outcomes["vector"][phase]
            assert s[Task.RELATIONAL].result == v[Task.RELATIONAL].result
            assert _kernel_signature(s.init_record) == _kernel_signature(v.init_record)
            assert _kernel_signature(s.shared_record) == _kernel_signature(v.shared_record)
            assert _kernel_signature(
                s[Task.RELATIONAL].traversal_record
            ) == _kernel_signature(v[Task.RELATIONAL].traversal_record)

    def test_expected_result(self, rel_compressed, spec):
        outcome = open_backend("gtadoc", rel_compressed).run(rel_query(spec))
        # frank's unparseable age fails the predicate, so nyc counts 2.
        assert outcome.result == [
            ("chi", (2, 35.0)),
            ("nyc", (2, 30.0)),
        ]


class TestWarmLaunches:
    def test_warm_query_launches_exactly_filter_and_aggregate(self, rel_compressed, spec):
        engine = GTadoc(rel_compressed, GTadocConfig(kernel_mode="scalar"))
        cold = engine.run_batch([Task.RELATIONAL], relational=spec)
        cold_launches = (
            cold.init_record.num_launches
            + cold.shared_record.num_launches
            + cold[Task.RELATIONAL].traversal_record.num_launches
        )
        other = RelationalQuery(schema=spec.schema, group_by="city")
        warm = engine.run_batch([Task.RELATIONAL], relational=other)
        warm_record = warm[Task.RELATIONAL].traversal_record
        warm_launches = (
            warm.init_record.num_launches
            + warm.shared_record.num_launches
            + warm_record.num_launches
        )
        assert warm_launches < cold_launches
        assert [k.name for k in warm_record.kernels] == [
            "relFilterKernel",
            "relAggregateKernel",
        ]

    def test_parse_states_are_per_schema(self, rel_compressed, spec):
        engine = GTadoc(rel_compressed, GTadocConfig(kernel_mode="scalar"))
        engine.run_batch([Task.RELATIONAL], relational=spec)
        keyed = RowSchema(fields=(FieldSpec("after_comma", key=","),))
        fresh = engine.run_batch(
            [Task.RELATIONAL],
            relational=RelationalQuery(schema=keyed, group_by="after_comma"),
        )
        names = [k.name for k in fresh.shared_record.kernels]
        # A new schema rebuilds its own parse states (parse kernels run again).
        assert "relParseKernel" in names


# ----------------------------------------------------------------------------------------
# Fusion and file subsets
# ----------------------------------------------------------------------------------------

class TestFusionAndSubsets:
    def test_fused_matches_unfused(self, rel_compressed, spec):
        engine = GTadoc(rel_compressed, GTadocConfig(kernel_mode="vector"))
        unfused = engine.run_batch(
            [Task.WORD_COUNT, Task.RELATIONAL], relational=spec
        )
        fused = engine.run_fused(
            [Task.WORD_COUNT, Task.RELATIONAL], relational=spec
        )
        for task in (Task.WORD_COUNT, Task.RELATIONAL):
            assert fused[task].result == unfused[task].result

    def test_file_subset_restricts_rows(self, rel_compressed, rel_corpus, spec):
        subset = tuple(sorted(rel_corpus.file_names))[:3]  # rows 0..2
        outcome = open_backend("gtadoc", rel_compressed).run(
            rel_query(spec, files=subset)
        )
        reference = open_backend("reference", rel_compressed).run(
            rel_query(spec, files=subset)
        )
        assert outcome.result == reference.result

    def test_shaping_applies_order_by_and_top_k(self, rel_compressed, schema):
        ordered = RelationalQuery(
            schema=schema,
            group_by="city",
            aggregates=(Aggregate("count"),),
            order_by="count",
        )
        outcome = open_backend("gtadoc", rel_compressed).run(
            rel_query(ordered, top_k=1)
        )
        assert outcome.result == [("nyc", (3,))]


# ----------------------------------------------------------------------------------------
# Cross-backend equivalence and serving
# ----------------------------------------------------------------------------------------

class TestBackendMatrix:
    def test_every_backend_answers_bit_identically(self, rel_compressed, spec):
        query = rel_query(spec)
        expected = open_backend("reference", rel_compressed).run(query).result
        for name in available_backends():
            backend = open_backend(name, rel_compressed)
            try:
                assert backend.run(query).result == expected, name
            finally:
                close = getattr(backend, "close", None)
                if callable(close):
                    close()


class TestServing:
    def test_result_cache_serves_repeated_relational_queries(self, rel_compressed, spec):
        from repro.serve import AnalyticsService

        service = AnalyticsService(rel_compressed)
        first = service.submit(rel_query(spec))
        second = service.submit(rel_query(spec))
        assert first.details["result_cache"] == "miss"
        assert second.details["result_cache"] == "hit"
        assert second.result == first.result
        assert second.kernel_launches == 0

    def test_relational_trace_replays_bit_identically(self, rel_compressed):
        from repro.serve import TraceConfig, replay_trace, synthesize_trace

        config = TraceConfig(num_requests=16, relational_fraction=0.5, seed=5)
        trace = synthesize_trace(rel_compressed.file_names, config)
        assert any(q.task is Task.RELATIONAL for q in trace)
        report = replay_trace(rel_compressed, trace, num_threads=2)
        assert report.results_match

    def test_trace_config_validates_relational_knobs(self, spec):
        from repro.serve import TraceConfig

        with pytest.raises(ValueError, match="within \\[0, 1\\]"):
            TraceConfig(relational_fraction=1.5)
        with pytest.raises(ValueError, match="RelationalQuery"):
            TraceConfig(relational_specs=("not a spec",))
