"""Tests for the unified query API: Query, backends, registry, outcomes.

The centrepiece is the cross-backend equivalence matrix: every
registered backend must return ``results_equal`` outputs for every task,
at two sequence lengths, and under a file-subset filter — all through
the one :class:`~repro.api.backend.AnalyticsBackend` protocol.
"""

from __future__ import annotations

import pytest

from repro.analytics.base import Task, results_equal
from repro.api import (
    AnalyticsBackend,
    BackendCapabilities,
    Query,
    RunOutcome,
    as_query,
    available_backends,
    open_backend,
    register_backend,
    shape_result,
)
from repro.api.registry import _REGISTRY
from repro.cluster.simulator import ClusterSpec
from repro.core.engine import GTadocRunResult
from repro.core.session import GTadocConfig
from repro.core.strategy import TraversalStrategy

ALL_BACKENDS = ("gtadoc", "cpu", "parallel", "distributed", "gpu_uncompressed", "reference")
#: All three serving front ends join the engines in the equivalence matrix.
MATRIX_BACKENDS = ALL_BACKENDS + ("serve", "serve_async", "serve_sharded")

#: Keep the simulated cluster small so the matrix stays fast on tiny corpora.
_BACKEND_OPTIONS = {
    "parallel": {"num_threads": 2},
    "distributed": {"cluster": ClusterSpec(num_nodes=2), "partitions_per_node": 1},
    "serve_sharded": {"num_shards": 2},
}


@pytest.fixture(scope="module")
def backends(tiny_compressed):
    """Every registered backend opened over the same compressed corpus."""
    opened = {
        name: open_backend(name, tiny_compressed, **_BACKEND_OPTIONS.get(name, {}))
        for name in available_backends()
    }
    yield opened
    for backend in opened.values():
        close = getattr(backend, "close", None)
        if callable(close):
            close()  # the serve_async adapter owns a loop thread + executor


# ----------------------------------------------------------------------------------------
# Query object
# ----------------------------------------------------------------------------------------

class TestQuery:
    def test_task_accepts_strings(self):
        assert Query(task="word_count").task is Task.WORD_COUNT

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            Query(task="not_a_task")

    def test_bad_sequence_length_rejected(self):
        with pytest.raises(ValueError):
            Query(task=Task.SEQUENCE_COUNT, sequence_length=0)

    def test_bad_top_k_rejected(self):
        with pytest.raises(ValueError):
            Query(task=Task.SORT, top_k=0)

    def test_empty_files_filter_rejected(self):
        with pytest.raises(ValueError):
            Query(task=Task.WORD_COUNT, files=())

    def test_files_accept_single_string(self):
        assert Query(task=Task.WORD_COUNT, files="a.txt").files == ("a.txt",)

    def test_files_deduplicated(self):
        query = Query(task=Task.WORD_COUNT, files=("a.txt", "a.txt", "b.txt"))
        assert query.files == ("a.txt", "b.txt")

    def test_traversal_accepts_strings(self):
        assert Query(task=Task.WORD_COUNT, traversal="bottom_up").traversal is (
            TraversalStrategy.BOTTOM_UP
        )

    def test_as_query_coerces_names(self):
        assert as_query("sort").task is Task.SORT
        query = Query(task=Task.SORT, top_k=2)
        assert as_query(query) is query

    def test_with_task_keeps_knobs(self):
        query = Query(task=Task.WORD_COUNT, top_k=3, files=("a.txt",))
        moved = query.with_task("sort")
        assert moved.task is Task.SORT
        assert moved.top_k == 3 and moved.files == ("a.txt",)

    def test_describe_mentions_knobs(self):
        text = Query(task=Task.SEQUENCE_COUNT, sequence_length=4, top_k=2).describe()
        assert "sequence_count" in text and "l=4" in text and "top_k=2" in text

    def test_query_is_hashable_cache_key(self):
        cache = {Query(task=Task.WORD_COUNT, top_k=3): "hit"}
        assert cache[Query(task="word_count", top_k=3)] == "hit"
        assert Query(task=Task.SORT) in {Query(task=Task.SORT)}


class TestQueryExtras:
    """``extras`` is frozen so a Query stays a safe cache key."""

    def test_extras_participate_in_equality_and_hash(self):
        with_extras = Query(task=Task.SORT, extras={"trace": "abc"})
        same = Query(task=Task.SORT, extras={"trace": "abc"})
        other = Query(task=Task.SORT, extras={"trace": "xyz"})
        assert with_extras == same and hash(with_extras) == hash(same)
        assert with_extras != other
        assert with_extras != Query(task=Task.SORT)

    def test_extras_hash_is_insertion_order_independent(self):
        forward = Query(task=Task.SORT, extras={"tag": 1, "trace": 2})
        backward = Query(task=Task.SORT, extras={"trace": 2, "tag": 1})
        assert forward == backward and hash(forward) == hash(backward)
        assert {forward: "cached"}[backward] == "cached"

    def test_extras_behave_as_a_mapping(self):
        query = Query(task=Task.SORT, extras={"tag": 1, "trace": 2})
        assert query.extras["tag"] == 1
        assert dict(query.extras) == {"tag": 1, "trace": 2}
        assert len(query.extras) == 2 and set(query.extras) == {"tag", "trace"}
        assert query.extras == {"tag": 1, "trace": 2}

    def test_extras_cannot_be_mutated(self):
        query = Query(task=Task.SORT, extras={"tag": 1})
        with pytest.raises(TypeError):
            query.extras["tag"] = 2  # type: ignore[index]

    def test_replace_does_not_share_mutable_state(self):
        from dataclasses import replace

        source = {"tag": 1}
        query = Query(task=Task.SORT, extras=source)
        moved = query.with_task("word_count")
        narrowed = replace(query, top_k=3)
        source["tag"] = 99  # the caller's dict is not the query's storage
        assert query.extras["tag"] == 1
        assert moved.extras["tag"] == 1 and narrowed.extras["tag"] == 1

    def test_unhashable_extras_value_rejected_at_construction(self):
        with pytest.raises(TypeError):
            Query(task=Task.SORT, extras={"tag": []})

    def test_non_string_extras_key_rejected(self):
        with pytest.raises(TypeError):
            Query(task=Task.SORT, extras={1: "x"})

    def test_unknown_extras_key_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="unknown extras.*allowed extras"):
            Query(task=Task.SORT, extras={"traec": "typo"})

    def test_known_extras_for_lists_the_contract(self):
        from repro.api.query import known_extras_for

        assert known_extras_for(Task.SORT) == {"tag", "trace"}
        assert "relational" in known_extras_for(Task.RELATIONAL)


class TestShaping:
    def test_top_k_truncates_sort(self):
        shaped = shape_result(Query(task=Task.SORT, top_k=1), {"a": 2, "b": 5})
        assert shaped == [("b", 5)]

    def test_top_k_truncates_ranked_lists(self):
        result = {"w": [("f1", 9), ("f2", 1)]}
        shaped = shape_result(Query(task=Task.RANKED_INVERTED_INDEX, top_k=1), result)
        assert shaped == {"w": [("f1", 9)]}

    def test_top_k_truncates_word_count(self):
        shaped = shape_result(Query(task=Task.WORD_COUNT, top_k=2), {"a": 1, "b": 3, "c": 2})
        assert shaped == {"b": 3, "c": 2}

    def test_top_k_truncates_sequence_count(self):
        result = {("a", "b"): 3, ("b", "c"): 1, ("c", "d"): 2}
        shaped = shape_result(Query(task=Task.SEQUENCE_COUNT, top_k=1), result)
        assert shaped == {("a", "b"): 3}

    def test_top_k_truncates_inverted_index_postings(self):
        result = {"w": ["c.txt", "a.txt", "b.txt"], "v": ["a.txt"]}
        shaped = shape_result(Query(task=Task.INVERTED_INDEX, top_k=2), result)
        # Postings normalize to name order first, then truncate.
        assert shaped == {"w": ["a.txt", "b.txt"], "v": ["a.txt"]}

    def test_top_k_truncates_term_vector_per_file(self):
        result = {"f1": {"a": 1, "b": 5, "c": 5}, "f2": {"x": 2}}
        shaped = shape_result(Query(task=Task.TERM_VECTOR, top_k=2), result)
        # Highest counts win; ties break by word, mirroring the ranked index.
        assert shaped == {"f1": {"b": 5, "c": 5}, "f2": {"x": 2}}

    def test_top_k_covers_every_task(self, tiny_reference):
        for task in Task.all():
            full = shape_result(Query(task=task), tiny_reference.run(task))
            cut = shape_result(Query(task=task, top_k=1), tiny_reference.run(task))
            if task is Task.SORT:
                assert len(cut) <= 1
            elif task in (Task.WORD_COUNT, Task.SEQUENCE_COUNT):
                assert len(cut) <= 1
            else:
                assert set(cut) == set(full)  # outer keys survive
                for entry in cut.values():
                    assert len(entry) <= 1

    def test_terms_filter_word_count(self):
        shaped = shape_result(Query(task=Task.WORD_COUNT, terms=("a",)), {"a": 1, "b": 2})
        assert shaped == {"a": 1}

    def test_terms_filter_sequences_need_all_words(self):
        result = {("a", "b"): 1, ("a", "c"): 2}
        shaped = shape_result(Query(task=Task.SEQUENCE_COUNT, terms=("a", "b")), result)
        assert shaped == {("a", "b"): 1}

    def test_term_vector_inner_filter(self):
        result = {"f": {"a": 1, "b": 2}}
        shaped = shape_result(Query(task=Task.TERM_VECTOR, terms=("b",)), result)
        assert shaped == {"f": {"b": 2}}


# ----------------------------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------------------------

class TestRegistry:
    def test_all_six_engines_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_unknown_backend_lists_choices(self, tiny_compressed):
        with pytest.raises(ValueError, match="gtadoc"):
            open_backend("bogus", tiny_compressed)

    def test_open_accepts_raw_corpus(self, tiny_corpus):
        backend = open_backend("gtadoc", tiny_corpus)
        outcome = backend.run(Query(task=Task.WORD_COUNT))
        assert outcome.result

    def test_open_accepts_compressed_for_raw_engines(self, tiny_compressed, tiny_reference):
        backend = open_backend("reference", tiny_compressed)
        outcome = backend.run(Query(task=Task.WORD_COUNT))
        assert outcome.result == tiny_reference.run(Task.WORD_COUNT)

    def test_register_custom_backend(self, tiny_compressed):
        class EchoBackend:
            name = "echo_test"

            def __init__(self, source):
                self.source = source

            def run(self, query):
                return RunOutcome(
                    query=query, backend=self.name, task=query.task, result={"echo": 1}
                )

            def run_batch(self, queries):
                return [self.run(query) for query in queries]

            def capabilities(self):
                return BackendCapabilities(
                    name=self.name, description="test", device="cpu", compressed_domain=False
                )

        register_backend("echo_test", EchoBackend)
        try:
            backend = open_backend("echo_test", tiny_compressed)
            assert isinstance(backend, AnalyticsBackend)
            assert backend.run(Query(task=Task.WORD_COUNT)).result == {"echo": 1}
            with pytest.raises(ValueError):
                register_backend("echo_test", EchoBackend)
        finally:
            _REGISTRY.pop("echo_test", None)

    def test_every_builtin_backend_satisfies_protocol(self, backends):
        for backend in backends.values():
            assert isinstance(backend, AnalyticsBackend)


# ----------------------------------------------------------------------------------------
# Cross-backend equivalence matrix (the satellite acceptance test)
# ----------------------------------------------------------------------------------------

MATRIX_SEQUENCE_LENGTHS = (2, 4)


@pytest.mark.parametrize("name", MATRIX_BACKENDS)
@pytest.mark.parametrize("task", Task.all())
def test_backend_matrix_matches_reference(backends, tiny_compressed, name, task):
    """Every backend agrees with the reference for every task, at two
    sequence lengths, and under a file-subset filter."""
    reference = backends["reference"]
    backend = backends[name]
    subset = tuple(tiny_compressed.file_names[:2])
    queries = [
        Query(task=task, sequence_length=length) for length in MATRIX_SEQUENCE_LENGTHS
    ] + [
        Query(task=task, sequence_length=MATRIX_SEQUENCE_LENGTHS[0], files=subset),
    ]
    for query in queries:
        expected = reference.run(query)
        outcome = backend.run(query)
        assert outcome.backend == name
        assert outcome.task is task
        assert results_equal(task, outcome.result, expected.result), query.describe()


#: A keyed schema over the tiny corpus: each field is the token
#: following its key ("the quick...", "grammar compression...").
def _tiny_relational_spec():
    from repro.relational.spec import (
        Aggregate,
        Condition,
        FieldSpec,
        RelationalQuery,
        RowSchema,
    )

    schema = RowSchema(
        fields=(
            FieldSpec("after_the", key="the"),
            FieldSpec("after_grammar", key="grammar"),
        )
    )
    return RelationalQuery(
        schema=schema,
        predicate=(Condition("after_the", "eq", "quick"),),
        group_by="after_grammar",
        aggregates=(Aggregate("count"), Aggregate("min", "after_the")),
    )


@pytest.mark.parametrize("name", MATRIX_BACKENDS)
def test_backend_matrix_covers_relational(backends, tiny_compressed, name):
    """The relational plan family joins the equivalence matrix: every
    backend answers the same SELECT-style query bit-identically, plain
    and under a file-subset filter."""
    spec = _tiny_relational_spec()
    subset = tuple(tiny_compressed.file_names[:2])
    queries = [
        Query(task=Task.RELATIONAL, extras={"relational": spec}),
        Query(task=Task.RELATIONAL, files=subset, extras={"relational": spec}),
    ]
    for query in queries:
        expected = backends["reference"].run(query)
        outcome = backends[name].run(query)
        assert outcome.task is Task.RELATIONAL
        assert outcome.result == expected.result, query.describe()


def test_run_batch_matches_individual_runs(backends):
    queries = [Query(task=Task.WORD_COUNT), Query(task=Task.SORT, top_k=4)]
    for name, backend in backends.items():
        outcomes = backend.run_batch(queries)
        assert [outcome.task for outcome in outcomes] == [Task.WORD_COUNT, Task.SORT]
        for query, outcome in zip(queries, outcomes):
            assert results_equal(query.task, outcome.result, backend.run(query).result), name


# ----------------------------------------------------------------------------------------
# Perf normalization and the G-TADOC serving path
# ----------------------------------------------------------------------------------------

class TestOutcomePerf:
    def test_gpu_backends_report_launches(self, backends):
        outcome = backends["gtadoc"].run(Query(task=Task.WORD_COUNT))
        assert outcome.kernel_launches >= 1
        assert outcome.ops > 0

    def test_cpu_backends_report_zero_launches_nonzero_ops(self, backends):
        for name in ("cpu", "parallel", "distributed"):
            outcome = backends[name].run(Query(task=Task.WORD_COUNT))
            assert outcome.kernel_launches == 0, name
            assert outcome.ops > 0, name
            assert outcome.perf.initialization.ops > 0, name
            assert outcome.perf.traversal.ops > 0, name

    def test_pcie_transfer_surfaces_in_perf(self, tiny_corpus):
        backend = open_backend("gpu_uncompressed", tiny_corpus, needs_pcie_transfer=True)
        outcome = backend.run(Query(task=Task.WORD_COUNT))
        assert outcome.perf.traversal.pcie_bytes > 0

    def test_reference_backend_has_no_perf_model(self, backends):
        outcome = backends["reference"].run(Query(task=Task.WORD_COUNT))
        assert outcome.kernel_launches == 0
        assert outcome.ops == 0.0

    def test_raw_keeps_engine_result(self, backends):
        outcome = backends["gtadoc"].run(Query(task=Task.WORD_COUNT))
        assert isinstance(outcome.raw, GTadocRunResult)
        assert outcome.details["strategy"] in ("top_down", "bottom_up")

    def test_capabilities_describe_engines(self, backends):
        caps = {name: backend.capabilities() for name, backend in backends.items()}
        assert caps["gtadoc"].device == "gpu" and caps["gtadoc"].compressed_domain
        assert caps["gtadoc"].native_file_filter and caps["gtadoc"].amortizes_batches
        assert caps["cpu"].device == "cpu" and caps["cpu"].compressed_domain
        assert caps["distributed"].device == "cluster"
        assert not caps["gpu_uncompressed"].compressed_domain
        assert not caps["reference"].compressed_domain
        for name, cap in caps.items():
            assert cap.name == name
            assert set(cap.tasks) == set(Task.all())


class TestGTadocServingPath:
    def test_initialization_charged_once_across_queries(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        first = backend.run(Query(task=Task.WORD_COUNT))
        second = backend.run(Query(task=Task.SORT))
        assert first.perf.initialization.kernel_launches > 0
        assert second.perf.initialization.kernel_launches == 0

    def test_amortize_false_pays_full_cost_every_time(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed, amortize=False)
        first = backend.run(Query(task=Task.WORD_COUNT))
        second = backend.run(Query(task=Task.WORD_COUNT))
        assert first.perf.initialization.kernel_launches > 0
        assert second.perf.initialization.kernel_launches == (
            first.perf.initialization.kernel_launches
        )

    def test_unknown_file_filter_rejected(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        with pytest.raises(ValueError, match="unknown file"):
            backend.run(Query(task=Task.WORD_COUNT, files=("missing.txt",)))

    def test_traversal_override_respected(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        outcome = backend.run(
            Query(task=Task.WORD_COUNT, traversal=TraversalStrategy.BOTTOM_UP)
        )
        assert outcome.details["strategy"] == "bottom_up"

    def test_per_query_sequence_lengths_share_one_session(self, tiny_compressed, tiny_corpus):
        from repro.analytics.reference import UncompressedAnalytics

        backend = open_backend("gtadoc", tiny_compressed)
        for length in (2, 3, 4):
            outcome = backend.run(Query(task=Task.SEQUENCE_COUNT, sequence_length=length))
            expected = UncompressedAnalytics(tiny_corpus, sequence_length=length).run(
                Task.SEQUENCE_COUNT
            )
            assert results_equal(Task.SEQUENCE_COUNT, outcome.result, expected)


@pytest.fixture(scope="module")
def mode_backends(tiny_compressed):
    """The G-TADOC backend opened once per kernel mode."""
    return {
        mode: open_backend(
            "gtadoc", tiny_compressed, config=GTadocConfig(kernel_mode=mode)
        )
        for mode in ("scalar", "vector")
    }


class TestKernelModeEquivalence:
    """The tentpole acceptance criterion: the vectorized kernel path is
    bit-identical to the interpreted scalar path — same results AND the
    same simulated launch/op counts — for every task, at two sequence
    lengths, and under a file-subset filter."""

    @pytest.mark.parametrize("task", Task.all())
    def test_vector_matches_scalar_bit_for_bit(self, mode_backends, tiny_compressed, task):
        subset = tuple(tiny_compressed.file_names[:2])
        queries = [
            Query(task=task, sequence_length=length)
            for length in MATRIX_SEQUENCE_LENGTHS
        ] + [
            Query(task=task, sequence_length=MATRIX_SEQUENCE_LENGTHS[0], files=subset),
        ]
        for query in queries:
            scalar = mode_backends["scalar"].run(query)
            vector = mode_backends["vector"].run(query)
            assert scalar.result == vector.result, query.describe()
            assert scalar.kernel_launches == vector.kernel_launches, query.describe()
            assert scalar.ops == vector.ops, query.describe()

    def test_traversal_overrides_agree_across_modes(self, mode_backends):
        for strategy in (TraversalStrategy.TOP_DOWN, TraversalStrategy.BOTTOM_UP):
            query = Query(task=Task.TERM_VECTOR, traversal=strategy)
            scalar = mode_backends["scalar"].run(query)
            vector = mode_backends["vector"].run(query)
            assert scalar.result == vector.result
            assert scalar.details["strategy"] == vector.details["strategy"]
            assert scalar.kernel_launches == vector.kernel_launches

    def test_default_mode_is_vector(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        assert backend.engine.session.config.kernel_mode == "vector"


class TestFilteredQueriesDoMarginalWork:
    """The PR's acceptance criterion: filtered/parameterized queries on the
    G-TADOC backend launch strictly fewer kernels than the corresponding
    full-corpus query."""

    def test_filtered_query_launches_strictly_fewer_kernels(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        subset = (tiny_compressed.file_names[0],)
        full = backend.run(
            Query(task=Task.TERM_VECTOR, traversal=TraversalStrategy.TOP_DOWN)
        )
        filtered = backend.run(
            Query(task=Task.TERM_VECTOR, files=subset, traversal=TraversalStrategy.TOP_DOWN)
        )
        # The full-corpus query paid initialization + shared state; the
        # restricted query only did marginal work on the warm session.
        assert filtered.kernel_launches < full.kernel_launches

        # Even marginal-vs-marginal (both warm), the restricted program
        # fuses its reduce into a single subset kernel: strictly fewer
        # launches and strictly less traversal work.
        full_again = backend.run(
            Query(task=Task.TERM_VECTOR, traversal=TraversalStrategy.TOP_DOWN)
        )
        assert (
            filtered.perf.traversal.kernel_launches
            < full_again.perf.traversal.kernel_launches
        )
        assert filtered.perf.traversal.ops < full_again.perf.traversal.ops

    def test_filtered_marginal_kernel_is_the_subset_kernel(self, tiny_compressed):
        backend = open_backend("gtadoc", tiny_compressed)
        outcome = backend.run(
            Query(
                task=Task.INVERTED_INDEX,
                files=(tiny_compressed.file_names[0],),
                traversal=TraversalStrategy.TOP_DOWN,
            )
        )
        names = [kernel.name for kernel in outcome.raw.traversal_record.kernels]
        assert names == ["reduceFileSubsetKernel"]

    def test_filtered_sequence_count_scans_fewer_segments(self, many_files_compressed):
        backend = open_backend("gtadoc", many_files_compressed)
        subset = tuple(many_files_compressed.file_names[:2])
        full = backend.run(Query(task=Task.SEQUENCE_COUNT))
        filtered = backend.run(Query(task=Task.SEQUENCE_COUNT, files=subset))
        assert filtered.perf.traversal.ops < full.perf.traversal.ops

    def test_filtered_bottomup_reduce_covers_subset_only(self, many_files_compressed):
        backend = open_backend("gtadoc", many_files_compressed)
        subset = tuple(many_files_compressed.file_names[:2])
        full = backend.run(
            Query(task=Task.TERM_VECTOR, traversal=TraversalStrategy.BOTTOM_UP)
        )
        filtered = backend.run(
            Query(task=Task.TERM_VECTOR, files=subset, traversal=TraversalStrategy.BOTTOM_UP)
        )
        full_kernel = full.raw.traversal_record.kernels[-1]
        filtered_kernel = filtered.raw.traversal_record.kernels[-1]
        assert filtered_kernel.num_threads == len(subset)
        assert filtered_kernel.num_threads < full_kernel.num_threads
