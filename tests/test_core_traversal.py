"""Tests for the top-down/bottom-up traversal kernels and sequence support."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.compressor import compress_corpus
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import FineGrainedScheduler
from repro.core.sequence import (
    build_sequence_buffers,
    head_tail_upper_limit,
    sequence_counts,
)
from repro.core.traversal import (
    bottomup_per_file_counts,
    bottomup_word_count,
    compute_rule_weights_topdown,
    topdown_per_file_counts,
    topdown_word_count,
)
from repro.data.corpus import Corpus, Document
from repro.gpusim.device import GPUDevice
from repro.gpusim.memory_pool import MemoryPool


def make_context(compressed):
    layout = DeviceRuleLayout.from_compressed(compressed)
    return layout, FineGrainedScheduler(layout), GPUDevice()


def expected_word_id_counts(compressed):
    counts = Counter()
    for index in range(len(compressed.file_names)):
        start, end = compressed.root_file_segments[index]
        for token in compressed.expand_file_tokens(index):
            counts[compressed.dictionary.lookup(token)] += 1
    return dict(counts)


class TestRuleWeights:
    def test_weights_match_dag(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        weights = compute_rule_weights_topdown(layout, device)
        assert weights == list(few_files_compressed.dag.weights)

    def test_weights_match_dag_many_files(self, many_files_compressed):
        layout, scheduler, device = make_context(many_files_compressed)
        weights = compute_rule_weights_topdown(layout, device)
        assert weights == list(many_files_compressed.dag.weights)

    def test_kernels_recorded(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        compute_rule_weights_topdown(layout, device)
        names = {kernel.name for kernel in device.record.kernels}
        assert "initTopDownMaskKernel" in names
        assert "topDownKernel" in names


class TestWordCountTraversals:
    def test_topdown_matches_expected(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        counts = topdown_word_count(layout, scheduler, device)
        assert counts == expected_word_id_counts(tiny_compressed)

    def test_bottomup_matches_expected(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        counts = bottomup_word_count(layout, device)
        assert counts == expected_word_id_counts(tiny_compressed)

    def test_both_directions_agree(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        top_down = topdown_word_count(layout, scheduler, device)
        bottom_up = bottomup_word_count(layout, GPUDevice())
        assert top_down == bottom_up

    def test_bottomup_memory_pool_allocation(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        pool = MemoryPool(capacity=8 * layout.estimated_local_table_entries() + 4096)
        bottomup_word_count(layout, device, memory_pool=pool)
        assert pool.used_words > 0
        assert pool.check_no_overlap()

    def test_single_file_corpus(self, single_file_compressed):
        layout, scheduler, device = make_context(single_file_compressed)
        counts = topdown_word_count(layout, scheduler, device)
        assert counts == expected_word_id_counts(single_file_compressed)


class TestPerFileTraversals:
    def _expected_per_file(self, compressed):
        expected = []
        for index in range(len(compressed.file_names)):
            counts = Counter(
                compressed.dictionary.lookup(token)
                for token in compressed.expand_file_tokens(index)
            )
            expected.append(dict(counts))
        return expected

    def test_topdown_per_file(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        per_file = topdown_per_file_counts(layout, scheduler, device)
        assert per_file == self._expected_per_file(tiny_compressed)

    def test_bottomup_per_file(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        per_file = bottomup_per_file_counts(layout, device)
        assert per_file == self._expected_per_file(tiny_compressed)

    def test_directions_agree_on_many_files(self, many_files_compressed):
        layout, scheduler, device = make_context(many_files_compressed)
        top_down = topdown_per_file_counts(layout, scheduler, device)
        bottom_up = bottomup_per_file_counts(layout, GPUDevice())
        assert top_down == bottom_up


class TestSequenceSupport:
    def test_equation_1_upper_limit(self):
        # wordSize + (l-1) * subRuleSize - (l-1)
        assert head_tail_upper_limit(rule_length=10, num_subrules=4, sequence_length=3) == 10 + 2 * 4 - 2

    def test_head_and_tail_match_expansions(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=3)
        grammar = few_files_compressed.grammar
        for rule_id in range(1, layout.num_rules):
            expansion = grammar.expand_rule(rule_id)
            assert buffers.heads[rule_id] == expansion[: min(2, len(expansion))]
            assert buffers.tails[rule_id] == expansion[-min(2, len(expansion)) :]

    def test_short_expansions_materialised(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=3)
        grammar = few_files_compressed.grammar
        for rule_id in range(1, layout.num_rules):
            expansion = grammar.expand_rule(rule_id)
            if len(expansion) <= 4:
                assert buffers.short_expansions[rule_id] == expansion
            else:
                assert buffers.short_expansions[rule_id] is None

    def test_buffer_rounds_bounded_by_depth(self, few_files_compressed):
        layout, scheduler, device = make_context(few_files_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=3)
        assert buffers.rounds <= few_files_compressed.dag.depth + 1

    def test_memory_pool_sized_by_equation_1(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        pool = MemoryPool(capacity=64 * layout.total_symbols + 4096)
        build_sequence_buffers(layout, device, sequence_length=3, memory_pool=pool)
        assert pool.used_words > 0

    def _reference_ngrams(self, compressed, length):
        counts = Counter()
        for index in range(len(compressed.file_names)):
            tokens = compressed.expand_file_tokens(index)
            ids = [compressed.dictionary.lookup(token) for token in tokens]
            for start in range(len(ids) - length + 1):
                counts[tuple(ids[start : start + length])] += 1
        return dict(counts)

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_sequence_counts_match_reference(self, tiny_compressed, length):
        layout, scheduler, device = make_context(tiny_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=length)
        weights = compute_rule_weights_topdown(layout, device)
        counts = sequence_counts(layout, scheduler, device, buffers, weights, length)
        assert counts == self._reference_ngrams(tiny_compressed, length)

    @pytest.mark.parametrize("length", [2, 3])
    def test_sequence_counts_on_generated_corpus(self, few_files_compressed, length):
        layout, scheduler, device = make_context(few_files_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=length)
        weights = compute_rule_weights_topdown(layout, device)
        counts = sequence_counts(layout, scheduler, device, buffers, weights, length)
        assert counts == self._reference_ngrams(few_files_compressed, length)

    def test_mismatched_length_rejected(self, tiny_compressed):
        layout, scheduler, device = make_context(tiny_compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=3)
        weights = compute_rule_weights_topdown(layout, device)
        with pytest.raises(ValueError):
            sequence_counts(layout, scheduler, device, buffers, weights, 2)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from("abcd"), min_size=0, max_size=40),
            min_size=1,
            max_size=3,
        )
    )
    def test_sequence_counts_property(self, token_lists):
        corpus = Corpus(
            [Document.from_tokens(f"f{i}", tokens) for i, tokens in enumerate(token_lists)],
            name="prop",
        )
        compressed = compress_corpus(corpus)
        layout, scheduler, device = make_context(compressed)
        buffers = build_sequence_buffers(layout, device, sequence_length=3)
        weights = compute_rule_weights_topdown(layout, device)
        counts = sequence_counts(layout, scheduler, device, buffers, weights, 3)
        expected = Counter()
        for tokens in token_lists:
            ids = [compressed.dictionary.lookup(token.lower()) for token in tokens]
            for start in range(len(ids) - 2):
                expected[tuple(ids[start : start + 3])] += 1
        assert counts == dict(expected)
