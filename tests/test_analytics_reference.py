"""Tests for the task definitions and the uncompressed reference implementations."""

from __future__ import annotations

import pytest

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, normalize_result, results_equal
from repro.analytics.reference import UncompressedAnalytics
from repro.data.corpus import Corpus


@pytest.fixture(scope="module")
def small_corpus() -> Corpus:
    return Corpus.from_texts(
        {
            "x.txt": "a b c a b c a",
            "y.txt": "b c d",
            "z.txt": "a a a b",
        },
        name="small",
    )


@pytest.fixture(scope="module")
def analytics(small_corpus) -> UncompressedAnalytics:
    return UncompressedAnalytics(small_corpus)


class TestTaskEnum:
    def test_all_six_tasks(self):
        assert len(Task.all()) == 6

    def test_from_name_case_insensitive(self):
        assert Task.from_name("Word_Count") is Task.WORD_COUNT

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            Task.from_name("frequency")

    def test_sequence_sensitivity_flags(self):
        assert Task.SEQUENCE_COUNT.is_sequence_sensitive
        assert not Task.WORD_COUNT.is_sequence_sensitive

    def test_file_sensitivity_flags(self):
        assert Task.INVERTED_INDEX.is_file_sensitive
        assert Task.TERM_VECTOR.is_file_sensitive
        assert Task.RANKED_INVERTED_INDEX.is_file_sensitive
        assert not Task.SORT.is_file_sensitive

    def test_default_sequence_length(self):
        assert SEQUENCE_LENGTH_DEFAULT == 3


class TestWordCount:
    def test_counts(self, analytics):
        assert analytics.word_count() == {"a": 6, "b": 4, "c": 3, "d": 1}

    def test_sort_orders_by_count_then_word(self, analytics):
        assert analytics.sort() == [("a", 6), ("b", 4), ("c", 3), ("d", 1)]


class TestInvertedIndex:
    def test_file_lists(self, analytics):
        index = analytics.inverted_index()
        assert index["a"] == ["x.txt", "z.txt"]
        assert index["d"] == ["y.txt"]
        assert index["b"] == ["x.txt", "y.txt", "z.txt"]

    def test_every_word_indexed(self, analytics, small_corpus):
        assert set(analytics.inverted_index()) == set(small_corpus.vocabulary)


class TestTermVector:
    def test_per_file_counts(self, analytics):
        vectors = analytics.term_vector()
        assert vectors["x.txt"] == {"a": 3, "b": 2, "c": 2}
        assert vectors["y.txt"] == {"b": 1, "c": 1, "d": 1}
        assert vectors["z.txt"] == {"a": 3, "b": 1}

    def test_ranked_inverted_index(self, analytics):
        ranked = analytics.ranked_inverted_index()
        assert ranked["a"] == [("x.txt", 3), ("z.txt", 3)]
        assert ranked["b"] == [("x.txt", 2), ("y.txt", 1), ("z.txt", 1)]


class TestSequenceCount:
    def test_trigram_counts(self, analytics):
        # x.txt = "a b c a b c a" -> abc, bca, cab, abc, bca
        counts = analytics.sequence_count()
        assert counts[("a", "b", "c")] == 2
        assert counts[("b", "c", "a")] == 2
        assert counts[("c", "a", "b")] == 1
        assert counts[("a", "a", "a")] == 1
        assert ("c", "d", "b") not in counts  # never crosses files

    def test_sequences_do_not_cross_files(self, small_corpus):
        counts = UncompressedAnalytics(small_corpus, sequence_length=2).sequence_count()
        assert ("a", "b") in counts
        assert ("d", "a") not in counts  # y.txt ends with d, z.txt starts with a

    def test_sequence_length_one_equals_word_count(self, small_corpus):
        analytics = UncompressedAnalytics(small_corpus, sequence_length=1)
        singles = {key[0]: value for key, value in analytics.sequence_count().items()}
        assert singles == analytics.word_count()

    def test_sequence_longer_than_document(self):
        corpus = Corpus.from_texts({"short.txt": "just two"})
        counts = UncompressedAnalytics(corpus, sequence_length=5).sequence_count()
        assert counts == {}

    def test_invalid_length_rejected(self, small_corpus):
        with pytest.raises(ValueError):
            UncompressedAnalytics(small_corpus, sequence_length=0)


class TestNormalization:
    def test_run_dispatcher_matches_methods(self, analytics):
        for task in Task.all():
            assert analytics.run(task) == normalize_result(
                task,
                {
                    Task.WORD_COUNT: analytics.word_count,
                    Task.SORT: analytics.sort,
                    Task.INVERTED_INDEX: analytics.inverted_index,
                    Task.TERM_VECTOR: analytics.term_vector,
                    Task.SEQUENCE_COUNT: analytics.sequence_count,
                    Task.RANKED_INVERTED_INDEX: analytics.ranked_inverted_index,
                }[task](),
            )

    def test_results_equal_ignores_file_order(self):
        left = {"w": ["b.txt", "a.txt"]}
        right = {"w": ["a.txt", "b.txt"]}
        assert results_equal(Task.INVERTED_INDEX, left, right)

    def test_results_equal_detects_difference(self):
        assert not results_equal(Task.WORD_COUNT, {"a": 1}, {"a": 2})

    def test_normalize_sort_is_stable_for_ties(self):
        result = normalize_result(Task.SORT, {"b": 2, "a": 2, "c": 1})
        assert result == [("a", 2), ("b", 2), ("c", 1)]

    def test_normalize_ranked_sorts_pairs(self):
        result = normalize_result(
            Task.RANKED_INVERTED_INDEX, {"w": [("b.txt", 1), ("a.txt", 5)]}
        )
        assert result == {"w": [("a.txt", 5), ("b.txt", 1)]}

    def test_normalize_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            normalize_result("not-a-task", {})
