"""Wire-codec tests: every serving data-plane type crosses the process
boundary losslessly, frames verify their integrity, and the codec stays
closed (unknown types fail loudly instead of degrading)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.base import Task
from repro.api.outcome import PhasePerf, RunOutcome, RunPerf
from repro.api.query import Query
from repro.compression.compressor import compress_corpus
from repro.core.session import GTadocConfig
from repro.core.strategy import TraversalStrategy
from repro.data.corpus import Corpus
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)
from repro.serve import AnalyticsService, TraceConfig, synthesize_trace
from repro.serve import wire
from repro.serve.caches import CacheStats
from repro.serve.trace import MutationEvent


def roundtrip(value):
    return wire.decode_frame(wire.encode_frame(value))


RELATIONAL = RelationalQuery(
    schema=RowSchema(
        fields=(
            FieldSpec(name="city", type="str", column=0),
            FieldSpec(name="pop", type="int", column=1),
        ),
        delimiter=",",
    ),
    predicate=(Condition(field="pop", op="gt", value=10),),
    group_by="city",
    aggregates=(Aggregate(op="count"), Aggregate(op="sum", field="pop")),
    order_by="sum(pop)",
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            0.1 + 0.2,  # repr round-trip keeps floats exact
            "",
            "tokens and spaces",
            [1, "two", None],
            (1, (2, 3), []),
            {"a": 1, "b": [2.0]},
            {("tuple", "key"): {"nested": (1,)}},  # session keys
            Task.WORD_COUNT,
            TraversalStrategy.TOP_DOWN,
        ],
    )
    def test_scalars_and_containers(self, value):
        decoded = roundtrip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_query_full_knobs(self):
        query = Query(
            task=Task.SEQUENCE_COUNT,
            sequence_length=4,
            top_k=7,
            files=("a.txt", "b.txt"),
            terms=("alpha", "beta"),
            traversal=TraversalStrategy.BOTTOM_UP,
            extras={"tag": "hot", "trace": 3},
        )
        assert roundtrip(query) == query

    def test_relational_query(self):
        query = Query(task=Task.RELATIONAL, extras={"relational": RELATIONAL})
        decoded = roundtrip(query)
        assert decoded == query
        assert decoded.extras["relational"] == RELATIONAL

    def test_mutation_event(self):
        event = MutationEvent(
            kind="append", documents=(("new.txt", "fresh tokens here"),), source=1
        )
        assert roundtrip(event) == event

    def test_engine_config(self):
        config = GTadocConfig(sequence_length=5, kernel_mode="scalar")
        assert roundtrip(config) == config

    def test_run_outcome_drops_raw_keeps_everything_else(self):
        outcome = RunOutcome(
            query=Query(task=Task.WORD_COUNT, top_k=3),
            backend="serve_sharded",
            task=Task.WORD_COUNT,
            result={"alpha": 4, "beta": 2},
            perf=RunPerf(
                initialization=PhasePerf(kernel_launches=1, ops=10.0),
                traversal=PhasePerf(kernel_launches=2, ops=20.0, memory_bytes=64.0),
            ),
            raw=object(),  # engine-internal; must not cross the wire
            details={"strategy": TraversalStrategy.TOP_DOWN.value, "cached": False},
        )
        decoded = roundtrip(outcome)
        assert decoded.raw is None
        for field in ("query", "backend", "task", "result", "perf", "details"):
            assert getattr(decoded, field) == getattr(outcome, field)

    def test_service_stats(self):
        corpus = Corpus.from_texts({"a.txt": "alpha beta alpha " * 20})
        service = AnalyticsService(corpus)
        service.submit(Query(task=Task.WORD_COUNT))
        stats = service.stats()
        decoded = roundtrip(stats)
        assert decoded == stats
        assert isinstance(decoded.session_cache, CacheStats)

    def test_codec_is_closed(self):
        with pytest.raises(TypeError, match="cannot encode"):
            wire.encode_value({1, 2, 3})
        with pytest.raises(TypeError, match="cannot encode"):
            wire.encode_frame(object())


class TestFraming:
    def test_truncated_frame_rejected(self):
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode_frame(b"\x00\x00")

    def test_length_mismatch_rejected(self):
        frame = wire.encode_frame({"key": "value"})
        with pytest.raises(wire.WireError, match="length mismatch"):
            wire.decode_frame(frame[:-1])

    def test_unknown_tag_rejected(self):
        import json
        import struct

        body = json.dumps(["Z", "payload"]).encode("utf-8")
        with pytest.raises(wire.WireError, match="unknown wire tag"):
            wire.decode_frame(struct.pack(">I", len(body)) + body)

    def test_malformed_value_rejected(self):
        with pytest.raises(wire.WireError, match="malformed"):
            wire.decode_value(["L", [], "extra"])


class TestTraceSpaceProperty:
    """Property-based closure: *everything* the trace synthesizer can
    produce — every task, knob combination, relational spec and mutation
    event — round-trips through the codec unchanged."""

    FILE_NAMES = tuple(f"doc_{index}.txt" for index in range(5))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_synthesized_traces_roundtrip(self, seed):
        config = TraceConfig(
            num_requests=24,
            seed=seed,
            relational_fraction=0.3,
            mutation_fraction=0.2,
            sequence_lengths=(None, 3, 5),
        )
        trace = synthesize_trace(self.FILE_NAMES, config)
        for item in trace:
            decoded = roundtrip(item)
            assert decoded == item
            assert type(decoded) is type(item)


class TestCorpusShipping:
    def _compressed(self):
        return compress_corpus(
            Corpus.from_texts(
                {
                    "a.txt": "alpha beta gamma delta " * 25,
                    "b.txt": "epsilon zeta eta theta " * 20,
                }
            )
        )

    def test_snapshot_roundtrip_preserves_identity_and_content(self):
        primary = self._compressed()
        replica = wire.corpus_from_snapshot(wire.corpus_snapshot(primary))
        assert replica.uid == primary.uid
        assert replica.version == primary.version
        assert replica.fingerprint() == primary.fingerprint()
        assert replica.file_names == primary.file_names
        for index in range(len(primary.file_names)):
            assert replica.expand_file_tokens(index) == primary.expand_file_tokens(index)

    def test_append_delta_reproduces_primary_bit_for_bit(self):
        primary = self._compressed()
        replica = wire.corpus_from_snapshot(wire.corpus_snapshot(primary))
        shipped_version, shipped_files = primary.version, len(primary.file_names)

        MutationEvent(
            kind="append", documents=(("c.txt", "iota kappa " * 15),)
        ).apply(primary)
        delta = wire.corpus_delta(primary, shipped_version, shipped_files)
        assert delta is not None
        wire.apply_corpus_delta(replica, delta)
        assert replica.fingerprint() == primary.fingerprint()
        assert replica.version == primary.version
        assert replica.uid == primary.uid

    def test_replace_mutation_forces_snapshot_fallback(self):
        primary = self._compressed()
        shipped_version, shipped_files = primary.version, len(primary.file_names)
        MutationEvent(
            kind="replace", documents=(("a.txt", "rewritten text " * 10),)
        ).apply(primary)
        assert wire.corpus_delta(primary, shipped_version, shipped_files) is None
        # The fallback snapshot still carries the routing identity.
        snapshot = wire.corpus_snapshot(primary)
        assert snapshot["uid"] == primary.uid
        assert snapshot["version"] == primary.version

    def test_snapshot_payload_is_wire_encodable(self):
        primary = self._compressed()
        assert roundtrip(wire.corpus_snapshot(primary)) == wire.corpus_snapshot(primary)

    def test_adopt_snapshot_refreshes_in_place(self):
        primary = self._compressed()
        replica = wire.corpus_from_snapshot(wire.corpus_snapshot(primary))
        MutationEvent(
            kind="replace", documents=(("a.txt", "fresh epoch " * 12),)
        ).apply(primary)
        before = replica
        wire.adopt_corpus_snapshot(replica, wire.corpus_snapshot(primary))
        assert replica is before  # same object: warm sessions can rekey
        assert replica.fingerprint() == primary.fingerprint()
        assert replica.version == primary.version
