"""Tests for the grammar DAG view (layers, weights, statistics)."""

from __future__ import annotations

import pytest

from repro.compression.dag import GrammarDAG
from repro.compression.grammar import make_rule_ref
from tests.test_grammar import build_example_grammar


@pytest.fixture()
def example_dag() -> GrammarDAG:
    return GrammarDAG(build_example_grammar())


class TestStructure:
    def test_children_with_multiplicity(self, example_dag):
        assert example_dag.children[0] == [(1, 2), (2, 1)]
        assert example_dag.children[1] == [(2, 2)]
        assert example_dag.children[2] == []

    def test_parents(self, example_dag):
        assert example_dag.parents[2] == [(0, 1), (1, 2)]
        assert example_dag.parents[1] == [(0, 2)]

    def test_in_out_edge_counts(self, example_dag):
        assert example_dag.num_in_edges == [0, 1, 2]
        assert example_dag.num_out_edges == [2, 1, 0]

    def test_layers_root_first(self, example_dag):
        assert example_dag.layers[0] == [0]
        assert example_dag.layers[1] == [1]
        assert example_dag.layers[2] == [2]

    def test_depth(self, example_dag):
        assert example_dag.depth == 3

    def test_topological_orders_are_inverses(self, example_dag):
        assert example_dag.topological_order() == list(reversed(example_dag.bottom_up_order()))

    def test_weights_count_occurrences(self, example_dag):
        # R1 occurs twice in the root; R2 occurs once in the root and twice in
        # each R1 occurrence -> 1 + 2*2 = 5.
        assert example_dag.weights == [1, 2, 5]

    def test_expansion_lengths_forwarded(self, example_dag):
        assert example_dag.expansion_lengths == [16, 6, 2]

    def test_cycle_detection(self):
        grammar = build_example_grammar()
        grammar.rules[2].symbols.append(make_rule_ref(1))
        with pytest.raises(ValueError):
            GrammarDAG(grammar)


class TestStatistics:
    def test_statistics_fields(self, example_dag):
        stats = example_dag.statistics()
        assert stats.num_rules == 3
        assert stats.num_edges == 3
        assert stats.total_symbols == 11
        assert stats.depth == 3
        assert stats.max_rule_length == 5
        assert stats.middle_layer_nodes == 1  # R1 is the only non-root internal node

    def test_statistics_on_generated_corpus(self, many_files_compressed):
        stats = many_files_compressed.dag.statistics()
        assert stats.num_rules == len(many_files_compressed.grammar)
        assert stats.depth >= 2
        assert stats.avg_rule_length > 0

    def test_weights_reproduce_expansion_length(self, few_files_compressed):
        """Sum over rules of weight * direct terminal count equals total tokens."""
        dag = few_files_compressed.dag
        grammar = few_files_compressed.grammar
        total = 0
        for rule in grammar:
            terminals = [
                symbol
                for symbol in rule.terminals()
                if not few_files_compressed.is_splitter(symbol)
            ]
            total += dag.weights[rule.rule_id] * len(terminals)
        assert total == few_files_compressed.original_tokens

    def test_subrule_frequency_lists_match_children(self, example_dag):
        assert example_dag.subrule_frequency_lists() == example_dag.children

    def test_parent_lists_ignore_multiplicity(self, example_dag):
        assert example_dag.parent_lists() == [[], [0], [0, 1]]
