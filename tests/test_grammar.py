"""Tests for the grammar/rule representation and symbol encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.compression.grammar import (
    Grammar,
    Rule,
    is_rule_ref,
    make_rule_ref,
    rule_ref_id,
)


def build_example_grammar() -> Grammar:
    """The Figure 1 grammar: R0 -> R1 R1 spt R2 w1, R1 -> R2 w3 R2 w4, R2 -> w1 w2.

    Word ids: w1=0, w2=1, w3=2, w4=3, splitter=4.
    """
    return Grammar(
        [
            Rule(0, [make_rule_ref(1), make_rule_ref(1), 4, make_rule_ref(2), 0]),
            Rule(1, [make_rule_ref(2), 2, make_rule_ref(2), 3]),
            Rule(2, [0, 1]),
        ]
    )


class TestSymbolEncoding:
    def test_rule_ref_roundtrip(self):
        for rule_id in (0, 1, 5, 1000):
            assert rule_ref_id(make_rule_ref(rule_id)) == rule_id

    def test_rule_refs_are_negative(self):
        assert make_rule_ref(0) == -1
        assert is_rule_ref(make_rule_ref(0))

    def test_terminals_are_not_rule_refs(self):
        assert not is_rule_ref(0)
        assert not is_rule_ref(42)

    def test_negative_rule_id_rejected(self):
        with pytest.raises(ValueError):
            make_rule_ref(-1)

    def test_rule_ref_id_of_terminal_rejected(self):
        with pytest.raises(ValueError):
            rule_ref_id(3)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_encoding_is_injective(self, rule_id):
        encoded = make_rule_ref(rule_id)
        assert is_rule_ref(encoded)
        assert rule_ref_id(encoded) == rule_id


class TestRule:
    def test_terminals_and_subrules(self):
        rule = Rule(1, [make_rule_ref(2), 2, make_rule_ref(2), 3])
        assert rule.terminals() == [2, 3]
        assert rule.subrule_ids() == [2, 2]

    def test_subrule_frequencies(self):
        rule = Rule(1, [make_rule_ref(2), 2, make_rule_ref(2), 3])
        assert rule.subrule_frequencies() == {2: 2}

    def test_terminal_frequencies(self):
        rule = Rule(0, [0, 1, 0, make_rule_ref(1)])
        assert rule.terminal_frequencies() == {0: 2, 1: 1}

    def test_len(self):
        assert len(Rule(0, [1, 2, 3])) == 3


class TestGrammar:
    def test_requires_root(self):
        with pytest.raises(ValueError):
            Grammar([])

    def test_rule_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            Grammar([Rule(0, []), Rule(2, [])])

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError):
            Grammar([Rule(0, [make_rule_ref(3)])])

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            Grammar([Rule(0, [make_rule_ref(0)])])

    def test_expand_root_matches_manual_expansion(self):
        grammar = build_example_grammar()
        # R2 = w1 w2 ; R1 = R2 w3 R2 w4 = w1 w2 w3 w1 w2 w4
        # R0 = R1 R1 spt R2 w1
        expected = [0, 1, 2, 0, 1, 3] * 2 + [4, 0, 1, 0]
        assert grammar.expand_root() == expected

    def test_expansion_lengths(self):
        grammar = build_example_grammar()
        lengths = grammar.expansion_lengths()
        assert lengths[2] == 2
        assert lengths[1] == 6
        assert lengths[0] == 16

    def test_total_symbols(self):
        grammar = build_example_grammar()
        assert grammar.total_symbols() == 5 + 4 + 2

    def test_expand_rule_single(self):
        grammar = build_example_grammar()
        assert grammar.expand_rule(2) == [0, 1]

    def test_cycle_detected_in_bottom_up_order(self):
        # A cycle cannot be constructed through the validated constructor,
        # so build rules that reference forward and then mutate.
        grammar = build_example_grammar()
        grammar.rules[2].symbols.append(make_rule_ref(1))
        with pytest.raises(ValueError):
            grammar.expansion_lengths()

    def test_equality(self):
        assert build_example_grammar() == build_example_grammar()

    def test_root_property(self):
        assert build_example_grammar().root.rule_id == 0

    def test_iteration_order(self):
        grammar = build_example_grammar()
        assert [rule.rule_id for rule in grammar] == [0, 1, 2]
