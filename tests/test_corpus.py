"""Tests for the corpus/document model, tokenizer and directory loaders."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.data.corpus import Corpus, Document, tokenize
from repro.data.loaders import load_corpus_dir, save_corpus_dir


class TestTokenize:
    def test_splits_on_whitespace(self):
        assert tokenize("alpha beta  gamma") == ["alpha", "beta", "gamma"]

    def test_lowercases(self):
        assert tokenize("Alpha BETA") == ["alpha", "beta"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_newlines_and_tabs(self):
        assert tokenize("a\nb\tc") == ["a", "b", "c"]

    def test_punctuation_stays_attached(self):
        assert tokenize("hello, world!") == ["hello,", "world!"]

    @given(st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=6), max_size=20))
    def test_roundtrip_of_space_joined_tokens(self, tokens):
        assert tokenize(" ".join(tokens)) == [token.lower() for token in tokens]


class TestDocument:
    def test_tokens_cached(self):
        document = Document("d", "a b c")
        assert document.tokens is document.tokens

    def test_num_tokens(self):
        assert Document("d", "a b c d").num_tokens == 4

    def test_size_bytes_utf8(self):
        assert Document("d", "abcd").size_bytes == 4

    def test_from_tokens_builds_text(self):
        document = Document.from_tokens("d", ["x", "y", "z"])
        assert document.text == "x y z"
        assert document.tokens == ["x", "y", "z"]

    def test_from_tokens_accepts_any_sequence(self):
        document = Document.from_tokens("d", ("a", "b"))
        assert document.tokens == ["a", "b"]


class TestCorpus:
    def test_len_and_iteration(self, tiny_corpus):
        assert len(tiny_corpus) == 3
        assert [doc.name for doc in tiny_corpus] == tiny_corpus.file_names

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Corpus([Document("same", "a"), Document("same", "b")])

    def test_getitem(self, tiny_corpus):
        assert tiny_corpus[0].name == "doc_a.txt"

    def test_num_tokens_is_sum(self, tiny_corpus):
        assert tiny_corpus.num_tokens == sum(doc.num_tokens for doc in tiny_corpus)

    def test_vocabulary_counts(self):
        corpus = Corpus.from_texts({"a": "x y x", "b": "x z"})
        assert corpus.vocabulary == {"x": 3, "y": 1, "z": 1}

    def test_vocabulary_size(self):
        corpus = Corpus.from_texts({"a": "x y x", "b": "x z"})
        assert corpus.vocabulary_size == 3

    def test_document_by_name(self, tiny_corpus):
        assert tiny_corpus.document_by_name("doc_b.txt").name == "doc_b.txt"

    def test_document_by_name_missing(self, tiny_corpus):
        with pytest.raises(KeyError):
            tiny_corpus.document_by_name("nope.txt")

    def test_token_streams_preserves_order(self, tiny_corpus):
        streams = tiny_corpus.token_streams()
        assert list(streams) == tiny_corpus.file_names

    def test_equality_by_name_and_tokens(self):
        left = Corpus.from_texts({"a": "x y"})
        right = Corpus.from_token_streams({"a": ["x", "y"]})
        assert left == right

    def test_inequality_different_tokens(self):
        left = Corpus.from_texts({"a": "x y"})
        right = Corpus.from_texts({"a": "x z"})
        assert left != right

    def test_from_texts_order_preserved(self):
        corpus = Corpus.from_texts({"z": "a", "a": "b"})
        assert corpus.file_names == ["z", "a"]


class TestLoaders:
    def test_save_and_load_roundtrip(self, tiny_corpus, tmp_path):
        directory = save_corpus_dir(tiny_corpus, tmp_path / "corpus")
        loaded = load_corpus_dir(directory, name="tiny")
        assert loaded == tiny_corpus

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus_dir(tmp_path / "absent")

    def test_manifest_preserves_order(self, tmp_path):
        corpus = Corpus.from_texts({"zz": "one", "aa": "two"})
        directory = save_corpus_dir(corpus, tmp_path / "ordered")
        loaded = load_corpus_dir(directory)
        assert loaded.file_names == ["zz", "aa"]

    def test_load_without_manifest_sorts_names(self, tmp_path):
        (tmp_path / "b.txt").write_text("bee")
        (tmp_path / "a.txt").write_text("ay")
        loaded = load_corpus_dir(tmp_path)
        assert loaded.file_names == ["a", "b"]

    def test_txt_suffix_added_when_missing(self, tmp_path):
        corpus = Corpus.from_texts({"plain": "words here"})
        directory = save_corpus_dir(corpus, tmp_path / "suffix")
        assert (directory / "plain.txt").exists()
